"""Out-of-core parameter & optimizer state: arena-backed weights with
just-in-time materialization.

PR 1–2 made *activations* physically out-of-core (serialized bytes in a
budgeted :class:`~repro.core.arena.ByteArena`, spill-to-disk overflow,
async prefetch).  :class:`ParamStore` extends the same regime to the rest
of the training state: every layer's weight tensors and per-parameter
optimizer slots (SGD momentum, Adam moments) are held as serialized byte
strings in an arena — optionally lossless-compressed through the codec
registry — and materialized only around the window that needs them:

* **forward / backward**: each layer's parameters are bound (fetched and
  installed as ``Parameter.data``) just before the layer runs and
  unbound (dropped back to a zero-byte stub) right after, so at most one
  layer's weights are resident at a time.
* **update**: the optimizer's slot backend (:class:`StoreSlots`) binds
  the weights and materializes the slots for exactly one parameter,
  applies the in-place update, and writes both back as fresh bytes.
* **prefetch**: the async compression engine's reverse-order prefetch
  (:class:`~repro.core.engine.AsyncEngine`) stages the *upcoming*
  layers' spilled parameter bytes back into arena memory alongside the
  spilled activations it already prefetches, so backward-pass binds hit
  memory, not disk.

Serialization is bit-exact by construction: the default raw encoding is
``ndarray.tobytes()`` and any configured codec must be lossless — a
spill/reload cycle can therefore never perturb training (loss curves are
bit-identical to resident training; the tests enforce it).

Accounting flows through the existing :class:`MemoryTracker` as a
*persistent* pool (charged on adopt/write-back, credited exactly once on
release), so resident-vs-stored numbers stay byte-exact next to the
activation path's per-iteration accounting.

Usage::

    net = build_scaled_model("vgg16", image_size=32)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
    store = ParamStore(budget_bytes=256 << 10)   # weights live out-of-core
    store.attach(net, opt)
    ...train...
    store.detach()                               # weights resident again
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.compression.registry import Codec, get_codec
from repro.compression.registry import dumps as _codec_dumps
from repro.compression.registry import loads as _codec_loads
from repro.core.arena import ByteArena
from repro.core.memory_tracker import MemoryTracker
from repro.nn.layers.base import Layer, Parameter
from repro.nn.network import iter_layers
from repro.nn.optim import Optimizer, SlotState
from repro.utils import profiler

__all__ = ["ParamStore", "StoreSlots", "StoredEntry"]


@dataclass
class StoredEntry:
    """One array (a weight tensor or an optimizer slot) living in the arena."""

    name: str
    layer_name: str
    shape: tuple
    dtype: str
    raw_nbytes: int
    stored_nbytes: int
    arena_key: int
    #: content fingerprint of the stored value (dirty tracking: a
    #: write-back of identical bytes is skipped entirely)
    digest: bytes = b""


def _content_digest(arr: np.ndarray) -> bytes:
    """128-bit BLAKE2b fingerprint of *arr*'s raw bytes (zero-copy for
    contiguous arrays).  Hashing is an order of magnitude cheaper than
    serialize + arena churn, which is the point of dirty tracking; a
    collision (~2^-64 birthday risk across a training run) would keep a
    stale value, so the digest is deliberately cryptographic rather
    than a CRC."""
    return hashlib.blake2b(np.ascontiguousarray(arr).data, digest_size=16).digest()


def _slot_entry_name(param: Parameter, slot: str) -> str:
    return f"{param.name}#{slot}"


class ParamStore:
    """Arena-backed storage for parameters and optimizer slots.

    Parameters
    ----------
    storage:
        The :class:`ByteArena` holding the serialized bytes.  ``None``
        creates a private arena with *budget_bytes* (closed again by
        :meth:`close`).  A dedicated arena (not shared with activation
        storage) keeps the FIFO spill order meaningful for each stream.
    budget_bytes:
        In-memory budget for a store-owned arena; entries beyond it
        spill to disk and are read back (or prefetched) on demand.
    spill_dir:
        Spill directory for a store-owned arena (``None`` = a private
        temp dir).  Declarative configs (``StorageSpec.spill_dir``)
        route here so param and activation spill files can share one
        operator-chosen location.
    codec:
        ``None`` (default) stores raw ``tobytes()`` — zero codec cost,
        bit-exact trivially.  A registry key or :class:`Codec` instance
        adds lossless compression on the wire; lossy codecs are rejected
        because a parameter round-trip must be bit-exact.
    tracker:
        Optional :class:`MemoryTracker`; the store charges its entries
        to the tracker's persistent pool.
    dirty_tracking:
        ``True`` (default): every entry carries a content digest, and a
        :meth:`writeback` whose value is unchanged (frozen layers,
        zero-gradient momentum, untouched Adam moments) skips the
        serialize + arena replace entirely — ``writeback_skipped``
        counts them.  Set ``False`` to force every write-back through.
    bind_window_bytes:
        ``0`` (default) binds strictly per layer — the historical
        behaviour.  A positive threshold groups *adjacent* layers into
        bind windows of up to that many raw parameter bytes: entering a
        window materializes all its layers' weights in one arena pass,
        and a layer's weights stay resident (refcount zero, "window
        resident") until the walk leaves the window — so a run of small
        layers pays one fetch each per pass instead of one per
        forward/backward visit, at a peak-residency cost bounded by the
        threshold.  Values round-trip through the arena untouched, so
        losses stay bit-identical to per-layer binding.
    """

    def __init__(
        self,
        storage: Optional[ByteArena] = None,
        budget_bytes: Optional[int] = 64 << 20,
        codec: Union[Codec, str, None] = None,
        tracker: Optional[MemoryTracker] = None,
        dirty_tracking: bool = True,
        spill_dir: Optional[str] = None,
        bind_window_bytes: int = 0,
    ):
        self._owns_storage = storage is None
        self.storage = (
            storage
            if storage is not None
            else ByteArena(budget_bytes=budget_bytes, spill_dir=spill_dir)
        )
        if isinstance(codec, str):
            codec = get_codec(codec)
        if codec is not None and not getattr(codec, "lossless", False):
            raise ValueError(
                f"ParamStore requires a lossless codec (parameters must "
                f"round-trip bit-exactly); {getattr(codec, 'name', codec)!r} is lossy"
            )
        if bind_window_bytes < 0:
            raise ValueError(
                f"bind_window_bytes must be >= 0, got {bind_window_bytes}"
            )
        self.codec = codec
        self.dirty_tracking = bool(dirty_tracking)
        self.bind_window_bytes = int(bind_window_bytes)
        self._windowing = self.bind_window_bytes > 0
        self.tracker = tracker or MemoryTracker()
        #: entry name -> StoredEntry; guarded by _lock (the async engine's
        #: workers read arena keys for staging while the training thread
        #: writes entries back)
        self._entries: Dict[str, StoredEntry] = {}
        self._lock = threading.RLock()
        # -- attachment state ---------------------------------------------
        self._attached = False
        self._layers: Dict[str, List[Parameter]] = {}
        self._stubs: Dict[str, np.ndarray] = {}
        self._bound: Dict[str, int] = {}
        self._orig_methods: List[tuple] = []
        self._optimizer: Optional[Optimizer] = None
        # -- bind windows (built in attach; immutable afterwards, so the
        # -- engine's staging workers can read them without the lock) ------
        self._layer_order: List[str] = []
        self._layer_pos: Dict[str, int] = {}
        self._window_of: Dict[str, int] = {}
        self._window_members: Dict[int, List[str]] = {}
        #: param names materialized at refcount zero because their bind
        #: window is the current one (training-thread state)
        self._window_resident: set = set()
        self._current_window: Optional[int] = None
        # -- statistics ----------------------------------------------------
        #: bytes of parameter/slot arrays currently materialized (bound)
        self.materialized_nbytes = 0
        self.peak_materialized_nbytes = 0
        self.fetch_count = 0
        self.writeback_count = 0
        #: write-backs skipped because the value was byte-identical to
        #: the stored one (dirty tracking)
        self.writeback_skipped = 0
        #: staging requests that failed (visible symptom of a prefetch
        #: race/regression — healthy runs keep this at 0)
        self.stage_errors = 0
        #: bind-window transitions (one arena pass each)
        self.window_switches = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "param_store")

    # -- serialization -----------------------------------------------------
    def _encode(self, arr: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(arr)
        if self.codec is None:
            return arr.tobytes()
        return _codec_dumps(self.codec.compress(arr))

    def _decode(self, entry: StoredEntry, data: bytes) -> np.ndarray:
        if self.codec is None:
            out = np.frombuffer(data, dtype=entry.dtype).reshape(entry.shape)
            return out.copy()  # frombuffer views are read-only
        out = self.codec.decompress(_codec_loads(data))
        return np.ascontiguousarray(out.reshape(entry.shape))

    # -- entry lifecycle ---------------------------------------------------
    def adopt(self, name: str, arr: np.ndarray, layer_name: str = "") -> StoredEntry:
        """Take ownership of *arr*: serialize it into the arena and charge
        the tracker's persistent pool."""
        with self._lock:
            if name in self._entries:
                raise ValueError(f"entry {name!r} already stored")
            blob = self._encode(arr)
            entry = StoredEntry(
                name=name,
                layer_name=layer_name,
                shape=tuple(arr.shape),
                dtype=str(arr.dtype),
                raw_nbytes=arr.nbytes,
                stored_nbytes=len(blob),
                arena_key=self.storage.put(blob),
                digest=_content_digest(arr) if self.dirty_tracking else b"",
            )
            self._entries[name] = entry
        self.tracker.record_persistent(name, entry.raw_nbytes, entry.stored_nbytes)
        return entry

    def fetch(self, name: str) -> np.ndarray:
        """Materialize the entry's current value (a fresh writable array)."""
        with self._lock:
            entry = self._entries[name]
            key = entry.arena_key
        self.fetch_count += 1
        return self._decode(entry, self.storage.get(key))

    def writeback(self, name: str, arr: np.ndarray) -> None:
        """Persist a new value: fresh bytes replace the old arena entry.

        The value is cast to the entry's recorded dtype/shape (matching
        resident in-place assignment semantics); a size mismatch raises
        here, at write time, rather than corrupting the next fetch.
        With dirty tracking, a value byte-identical to the stored one
        skips serialization and the arena replace entirely (the stored
        bytes are already it)."""
        with self._lock:
            entry = self._entries[name]
        arr = np.asarray(arr, dtype=entry.dtype).reshape(entry.shape)
        if self.dirty_tracking:
            digest = _content_digest(arr)
            if digest == entry.digest:
                self.writeback_skipped += 1
                return
        else:
            digest = b""
        blob = self._encode(arr)
        with self._lock:
            entry = self._entries[name]
            self.storage.discard(entry.arena_key)
            entry.arena_key = self.storage.put(blob)
            entry.stored_nbytes = len(blob)
            entry.digest = digest
        self.writeback_count += 1
        self.tracker.record_persistent(name, entry.raw_nbytes, entry.stored_nbytes)

    def release(self, name: str) -> np.ndarray:
        """Materialize and permanently drop the entry (exactly once; a
        second release of the same name raises ``KeyError``)."""
        with self._lock:
            entry = self._entries.pop(name)
        out = self._decode(entry, self.storage.get(entry.arena_key))
        self.storage.discard(entry.arena_key)
        self.tracker.release_persistent(name)
        return out

    def stage_layers(self, layer_names: Iterable[str]) -> int:
        """Prefetch the spilled bytes of entries belonging to the given
        layers back into arena memory (async-engine staging hook; safe
        from worker threads).

        Staged bytes bypass the arena's FIFO budget, so the staging
        cache is capped at one budget's worth via
        ``ByteArena.prefetch(..., max_bytes=...)`` — enforced atomically
        under the arena's lock, so concurrent staging jobs cannot
        jointly overshoot; memory-resident entries are skipped by the
        arena without consuming any of the cap.  One entry is always
        admitted when the cache is empty, so a zero-budget
        (spill-everything) arena still gets its next layer prefetched."""
        try:
            wanted = set(layer_names)
            with self._lock:
                keys = [
                    e.arena_key
                    for e in self._entries.values()
                    if e.layer_name in wanted
                    and not self._bound.get(e.name, 0)
                    and e.name not in self._window_resident
                ]
            if not keys:
                return 0
            return self.storage.prefetch(keys, max_bytes=self.storage.budget_bytes)
        except Exception:
            # Runs on engine workers whose futures nobody consumes:
            # swallowing would hide breakage, raising would kill the
            # worker silently — count it so the stats surface it.
            self.stage_errors += 1
            return 0

    def stage_next_window(self, layer_name: str) -> int:
        """Stage the *following* bind window's spilled parameter bytes
        (forward-side weight double buffering; safe from worker threads).

        The async engine calls this as each layer's pack is submitted —
        i.e. while the next layer's forward computes — so by the time
        the walk enters the next window, its weights are in arena
        memory.  Without bind windows the "window" is the single next
        layer.  Layers unknown to the store (fully parameter-free, or a
        foreign network) are a no-op."""
        try:
            if self._windowing:
                wid = self._window_of.get(layer_name)
                if wid is None:
                    return 0
                names = self._window_members.get(wid + 1, [])
            else:
                pos = self._layer_pos.get(layer_name)
                if pos is None:
                    return 0
                names = self._layer_order[pos + 1 : pos + 2]
            if not names:
                return 0
            with profiler.stage("bind-window", hidden=True):
                return self.stage_layers(names)
        except Exception:
            self.stage_errors += 1
            return 0

    # -- attachment: JIT binding around forward/backward/update ------------
    def attach(self, network: Layer, optimizer: Optional[Optimizer] = None) -> "ParamStore":
        """Move *network*'s parameters (and *optimizer*'s slots) into the
        store and wrap each layer so weights materialize just-in-time.

        After this call ``Parameter.data`` outside a layer's
        forward/backward (or the optimizer's update window) is a
        read-only NaN stub — accidental out-of-window reads poison the
        result loudly instead of silently using stale weights.
        """
        if self._attached:
            raise RuntimeError("ParamStore is already attached to a network")
        self._attached = True
        layer_nbytes: Dict[str, int] = {}
        for layer in iter_layers(network):
            params = layer.parameters()
            if not params:
                continue
            self._layers[layer.name] = params
            self._layer_pos[layer.name] = len(self._layer_order)
            self._layer_order.append(layer.name)
            layer_nbytes[layer.name] = sum(p.data.nbytes for p in params)
            for p in params:
                self.adopt(p.name, p.data, layer_name=layer.name)
                self._stubs[p.name] = self._make_stub(p.data)
                self._bound[p.name] = 0
                p.data = self._stubs[p.name]
            self._wrap_layer(layer)
        if self._windowing:
            self._assign_windows(layer_nbytes)
        if optimizer is not None:
            self.attach_optimizer(optimizer)
        return self

    def _assign_windows(self, layer_nbytes: Dict[str, int]) -> None:
        """Greedily group adjacent layers into bind windows: a window
        closes when adding the next layer would push its raw parameter
        bytes past ``bind_window_bytes`` (an oversized single layer gets
        a window to itself)."""
        wid = -1
        acc = 0
        for name in self._layer_order:
            nbytes = layer_nbytes[name]
            if wid < 0 or acc + nbytes > self.bind_window_bytes:
                wid += 1
                acc = 0
            self._window_of[name] = wid
            self._window_members.setdefault(wid, []).append(name)
            acc += nbytes

    def attach_optimizer(self, optimizer: Optimizer) -> "ParamStore":
        """Migrate *optimizer*'s slot arrays into the store (accumulated
        momentum survives) and install the store-backed slot state."""
        if self._optimizer is not None:
            raise RuntimeError("ParamStore already has an optimizer attached")
        self._optimizer = optimizer
        optimizer.use_slot_state(StoreSlots(self, optimizer))
        return self

    @staticmethod
    def _make_stub(arr: np.ndarray) -> np.ndarray:
        # Zero-byte placeholder with the real shape/dtype: shape-dependent
        # code (init_slots, grad reshapes) keeps working, reads give NaN
        # (loud), writes raise (broadcast views are read-only).
        return np.broadcast_to(np.asarray(np.nan, dtype=arr.dtype), arr.shape)

    def _wrap_layer(self, layer: Layer) -> None:
        orig_forward, orig_backward = layer.forward, layer.backward
        self._orig_methods.append((layer, orig_forward, orig_backward))

        def forward(x, _name=layer.name, _orig=orig_forward):
            self._bind(_name)
            try:
                return _orig(x)
            finally:
                self._unbind(_name)

        def backward(dout, _name=layer.name, _orig=orig_backward):
            self._bind(_name)
            try:
                return _orig(dout)
            finally:
                self._unbind(_name)

        layer.forward = forward
        layer.backward = backward

    def _bind(self, layer_name: str) -> None:
        if self._windowing:
            wid = self._window_of.get(layer_name)
            if wid is not None and wid != self._current_window:
                self._switch_window(wid)
        for p in self._layers[layer_name]:
            if self._bound[p.name] == 0:
                if p.name in self._window_resident:
                    # Already materialized by the window pass: claiming
                    # it just converts residency into a bound reference.
                    self._window_resident.discard(p.name)
                else:
                    p.data = self.fetch(p.name)
                    self.materialized_nbytes += p.data.nbytes
                    self.peak_materialized_nbytes = max(
                        self.peak_materialized_nbytes, self.materialized_nbytes
                    )
            self._bound[p.name] += 1

    def _switch_window(self, wid: int) -> None:
        """Leave the current bind window and materialize the next one.

        Dropping the old window's refcount-zero residents before
        fetching the new one keeps peak residency at (roughly) one
        window; the incoming fetches run as one batch, which is the
        arena pass the engine's ``stage_next_window`` pre-warms.
        """
        with profiler.stage("bind-window"):
            prev = self._current_window
            if prev is not None:
                for name in self._window_members.get(prev, ()):
                    for p in self._layers[name]:
                        if p.name in self._window_resident:
                            self._window_resident.discard(p.name)
                            self.materialized_nbytes -= p.data.nbytes
                            p.data = self._stubs[p.name]
            self._current_window = wid
            self.window_switches += 1
            for name in self._window_members.get(wid, ()):
                for p in self._layers[name]:
                    if self._bound.get(p.name, 0) == 0 and p.name not in self._window_resident:
                        p.data = self.fetch(p.name)
                        self.materialized_nbytes += p.data.nbytes
                        self._window_resident.add(p.name)
            self.peak_materialized_nbytes = max(
                self.peak_materialized_nbytes, self.materialized_nbytes
            )

    def _unbind(self, layer_name: str) -> None:
        # Forward/backward read but never mutate weights, so unbinding
        # just drops the materialization — the arena copy stays
        # authoritative; only update_window writes back.  Inside the
        # current bind window the materialization is *kept* (window
        # residency) so the backward visit — or the next layer in the
        # window — reuses it without another fetch.
        sticky = (
            self._windowing
            and self._window_of.get(layer_name) == self._current_window
        )
        for p in self._layers[layer_name]:
            self._bound[p.name] -= 1
            if self._bound[p.name] == 0:
                if sticky:
                    self._window_resident.add(p.name)
                else:
                    self.materialized_nbytes -= p.data.nbytes
                    p.data = self._stubs[p.name]

    @contextmanager
    def update_window(self, param: Parameter) -> Iterator[None]:
        """Materialize *param*'s weights for one optimizer update and
        write the mutated values back on exit."""
        with self._lock:
            has_data = param.name in self._entries
        if not has_data:
            # Slots-only attachment: the weights never left residency.
            yield
            return
        if self._bound.get(param.name, 0):
            # Already bound by an enclosing forward/backward window (not
            # the training loop's shape, but be correct if it happens).
            yield
            self.writeback(param.name, param.data)
            return
        if param.name in self._window_resident:
            # Window residency is read-only reuse; an update must flow
            # through the ordinary fetch/writeback cycle, so drop the
            # residency first (the one extra fetch below is the price of
            # keeping the accounting single-sourced).
            self._window_resident.discard(param.name)
            self.materialized_nbytes -= param.data.nbytes
            param.data = self._stubs[param.name]
        param.data = self.fetch(param.name)
        self.materialized_nbytes += param.data.nbytes
        self.peak_materialized_nbytes = max(
            self.peak_materialized_nbytes, self.materialized_nbytes
        )
        try:
            yield
        finally:
            self.writeback(param.name, param.data)
            self.materialized_nbytes -= param.data.nbytes
            param.data = self._stubs[param.name]

    # -- teardown ----------------------------------------------------------
    def detach(self) -> None:
        """Restore resident training: materialize every entry back into
        its parameter/slot array, unwrap the layers, and release all
        accounting (idempotent)."""
        if not self._attached:
            return
        for layer, fwd, bwd in self._orig_methods:
            layer.forward, layer.backward = fwd, bwd
        self._orig_methods.clear()
        if self._optimizer is not None:
            from repro.nn.optim import ResidentSlots

            # use_slot_state migrates: drops each slot from the store
            # (releasing its accounting) into the resident backend.
            self._optimizer.use_slot_state(ResidentSlots())
            self._optimizer = None
        for params in self._layers.values():
            for p in params:
                p.data = self.release(p.name)
        self._layers.clear()
        self._stubs.clear()
        self._bound.clear()
        self._layer_order.clear()
        self._layer_pos.clear()
        self._window_of.clear()
        self._window_members.clear()
        self._window_resident.clear()
        self._current_window = None
        self.materialized_nbytes = 0
        self._attached = False

    def close(self) -> None:
        """Detach (restoring resident state) and close an owned arena."""
        self.detach()
        if self._owns_storage:
            self.storage.close()

    def __enter__(self) -> "ParamStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ---------------------------------------------------------
    @property
    def stored_nbytes(self) -> int:
        with self._lock:
            return sum(e.stored_nbytes for e in self._entries.values())

    @property
    def raw_nbytes(self) -> int:
        with self._lock:
            return sum(e.raw_nbytes for e in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        codec = getattr(self.codec, "name", None) or "raw"
        return (
            f"ParamStore(entries={len(self)}, stored={self.stored_nbytes}B, "
            f"codec={codec}, arena={self.storage!r})"
        )


class StoreSlots(SlotState):
    """Slot backend holding optimizer state in a :class:`ParamStore`.

    Each ``update`` materializes one parameter's weights and slots,
    applies the optimizer's in-place math, and writes everything back —
    the only moment a parameter's full update state is resident.
    """

    def __init__(self, store: ParamStore, optimizer: Optimizer):
        self.store = store
        self.optimizer = optimizer

    def _layer_of(self, param: Parameter) -> str:
        with self.store._lock:
            entry = self.store._entries.get(param.name)
        return entry.layer_name if entry is not None else ""

    def init(self, param: Parameter, slots: Dict[str, np.ndarray]) -> None:
        layer_name = self._layer_of(param)
        for slot, arr in slots.items():
            self.store.adopt(_slot_entry_name(param, slot), arr, layer_name=layer_name)

    @contextmanager
    def update(self, param: Parameter) -> Iterator[Dict[str, np.ndarray]]:
        with self.store.update_window(param):
            slots = {
                slot: self.store.fetch(_slot_entry_name(param, slot))
                for slot in self.optimizer.slot_names
            }
            try:
                yield slots
            finally:
                # Mirror resident semantics on exceptions too: in-place
                # mutation persists whatever state apply_update reached,
                # for weights (update_window's finally) AND slots alike —
                # never one without the other.
                for slot, arr in slots.items():
                    self.store.writeback(_slot_entry_name(param, slot), arr)

    def read(self, param: Parameter, slot: str) -> np.ndarray:
        return self.store.fetch(_slot_entry_name(param, slot))

    def write(self, param: Parameter, slot: str, value: np.ndarray) -> None:
        self.store.writeback(_slot_entry_name(param, slot), np.asarray(value))

    def drop(self, param: Parameter) -> Dict[str, np.ndarray]:
        return {
            slot: self.store.release(_slot_entry_name(param, slot))
            for slot in self.optimizer.slot_names
        }
