"""Byte-arena activation storage: hold packed activations as real bytes.

The compressing context historically kept live ``CompressedTensor``
objects and *charged* their estimated footprint to the memory tracker.
:class:`ByteArena` makes the footprint physical: packed activations are
stored as serialized byte strings (``registry.dumps`` output), subject
to a configurable in-memory budget with spill-to-disk overflow — the
out-of-core regime an actual deployment hits when compressed activations
still exceed device memory.

Eviction is FIFO (oldest first), which is optimal for the training
workload: backward consumes activations in reverse pack order, so the
first-packed (earliest-layer) bytes are exactly the ones needed last.

Usage::

    arena = ByteArena(budget_bytes=32 << 20)
    ctx = CompressingContext(compressor, storage=arena)
    # ... training ...
    print(arena.in_memory_nbytes, arena.spilled_nbytes, arena.spill_count)
"""

from __future__ import annotations

import os
import shutil
import tempfile
import uuid
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ByteArena"]


class ByteArena:
    """Budgeted byte-string store with FIFO spill-to-disk overflow.

    Parameters
    ----------
    budget_bytes:
        In-memory ceiling.  ``None`` disables spilling (everything stays
        resident); ``0`` spills every entry immediately.
    spill_dir:
        Directory for spill files.  Defaults to a fresh temporary
        directory created lazily on first spill and removed by
        :meth:`close` (also invoked by ``__del__`` and context exit).
    """

    def __init__(self, budget_bytes: Optional[int] = 64 << 20, spill_dir: Optional[str] = None):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0 or None, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        #: key -> bytes, insertion-ordered (FIFO eviction)
        self._mem: "OrderedDict[int, bytes]" = OrderedDict()
        #: key -> (path, nbytes) for spilled entries
        self._disk: Dict[int, Tuple[str, int]] = {}
        self._next_key = 0
        #: unique per-arena spill-file prefix so arenas sharing a
        #: spill_dir cannot clobber each other's entries
        self._tag = uuid.uuid4().hex[:12]
        self._closed = False
        # -- statistics ---------------------------------------------------
        self.in_memory_nbytes = 0
        self.spilled_nbytes = 0
        self.peak_in_memory_nbytes = 0
        self.peak_total_nbytes = 0
        #: number of entries ever written to disk
        self.spill_count = 0

    # -- internals ---------------------------------------------------------
    def _ensure_spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-arena-")
        else:
            os.makedirs(self._spill_dir, exist_ok=True)
        return self._spill_dir

    def _spill_oldest(self) -> None:
        key, data = self._mem.popitem(last=False)
        path = os.path.join(self._ensure_spill_dir(), f"{self._tag}-{key}.bin")
        with open(path, "wb") as f:
            f.write(data)
        self._disk[key] = (path, len(data))
        self.in_memory_nbytes -= len(data)
        self.spilled_nbytes += len(data)
        self.spill_count += 1

    def _maybe_spill(self) -> None:
        if self.budget_bytes is None:
            return
        while self._mem and self.in_memory_nbytes > self.budget_bytes:
            self._spill_oldest()

    def _track_peaks(self) -> None:
        self.peak_in_memory_nbytes = max(self.peak_in_memory_nbytes, self.in_memory_nbytes)
        self.peak_total_nbytes = max(self.peak_total_nbytes, self.total_nbytes)

    # -- API ---------------------------------------------------------------
    def put(self, data: bytes) -> int:
        """Store *data*; returns the key for :meth:`get`/:meth:`pop`."""
        if self._closed:
            raise RuntimeError("arena is closed")
        key = self._next_key
        self._next_key += 1
        self._mem[key] = bytes(data)
        self.in_memory_nbytes += len(data)
        # Peaks reflect the true resident high-water mark: the new entry
        # is held in memory before any spill relieves the budget.
        self._track_peaks()
        self._maybe_spill()
        return key

    def get(self, key: int) -> bytes:
        """Read the bytes for *key* without releasing the entry."""
        if key in self._mem:
            return self._mem[key]
        try:
            path, _ = self._disk[key]
        except KeyError:
            raise KeyError(f"arena key {key} not found") from None
        with open(path, "rb") as f:
            return f.read()

    def pop(self, key: int) -> bytes:
        """Read and release the entry (spill files are deleted)."""
        data = self.get(key)
        self.discard(key)
        return data

    def discard(self, key: int) -> None:
        """Release the entry without reading it; unknown keys are a no-op."""
        if key in self._mem:
            self.in_memory_nbytes -= len(self._mem.pop(key))
            return
        entry = self._disk.pop(key, None)
        if entry is not None:
            path, nbytes = entry
            self.spilled_nbytes -= nbytes
            try:
                os.remove(path)
            except OSError:
                pass

    def __contains__(self, key: int) -> bool:
        return key in self._mem or key in self._disk

    def __len__(self) -> int:
        return len(self._mem) + len(self._disk)

    @property
    def total_nbytes(self) -> int:
        """Live bytes across memory and disk."""
        return self.in_memory_nbytes + self.spilled_nbytes

    def close(self) -> None:
        """Drop every entry, delete spill files, and remove the owned
        spill directory (a user-provided directory is left in place,
        minus this arena's files)."""
        if self._closed:
            return
        self._mem.clear()
        for path, _ in self._disk.values():
            try:
                os.remove(path)
            except OSError:
                pass
        self._disk.clear()
        self.in_memory_nbytes = 0
        self.spilled_nbytes = 0
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
        self._closed = True

    def __enter__(self) -> "ByteArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        budget = "none" if self.budget_bytes is None else f"{self.budget_bytes}B"
        return (
            f"ByteArena(entries={len(self)}, mem={self.in_memory_nbytes}B, "
            f"disk={self.spilled_nbytes}B, budget={budget})"
        )
