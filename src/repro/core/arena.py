"""Byte-arena activation storage: hold packed activations as real bytes.

The compressing context historically kept live ``CompressedTensor``
objects and *charged* their estimated footprint to the memory tracker.
:class:`ByteArena` makes the footprint physical: packed activations are
stored as serialized byte strings (``registry.dumps`` output), subject
to a configurable in-memory budget with spill-to-disk overflow — the
out-of-core regime an actual deployment hits when compressed activations
still exceed device memory.

Eviction is FIFO (oldest first), which is optimal for the training
workload: backward consumes activations in reverse pack order, so the
first-packed (earliest-layer) bytes are exactly the ones needed last.

Every operation is serialized behind an internal re-entrant lock, so the
arena is safe to share with the async compression engine's worker pool
(:mod:`repro.core.engine`): concurrent ``put``/``get``/``discard``
cannot corrupt the FIFO order, double-spill an entry, or tear the byte
accounting.  :meth:`prefetch` stages spilled entries back into an
in-memory cache ahead of need — the engine calls it in reverse pack
order before the backward pass reads the bytes.

Usage::

    arena = ByteArena(budget_bytes=32 << 20)
    ctx = CompressingContext(compressor, storage=arena)
    # ... training ...
    print(arena.in_memory_nbytes, arena.spilled_nbytes, arena.spill_count)
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import uuid
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Tuple

from repro.utils import profiler

__all__ = ["ByteArena", "ArenaPool"]


class ByteArena:
    """Budgeted byte-string store with FIFO spill-to-disk overflow.

    Parameters
    ----------
    budget_bytes:
        In-memory ceiling.  ``None`` disables spilling (everything stays
        resident); ``0`` spills every entry immediately.
    spill_dir:
        Directory for spill files.  Defaults to a fresh temporary
        directory created lazily on first spill and removed by
        :meth:`close` (also invoked by ``__del__`` and context exit).
    """

    def __init__(self, budget_bytes: Optional[int] = 64 << 20, spill_dir: Optional[str] = None):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0 or None, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        #: key -> bytes, insertion-ordered (FIFO eviction)
        self._mem: "OrderedDict[int, bytes]" = OrderedDict()
        #: key -> (path, nbytes) for spilled entries
        self._disk: Dict[int, Tuple[str, int]] = {}
        #: key -> bytes staged back from disk by :meth:`prefetch`; the
        #: disk entry stays authoritative until the key is discarded
        self._staged: Dict[int, bytes] = {}
        self._next_key = 0
        #: key -> group label for entries stored with ``put(group=...)``
        self._group_of: Dict[int, str] = {}
        #: group label -> in-memory sub-budget (see :meth:`set_group_budget`)
        self._group_budgets: Dict[str, int] = {}
        #: group label -> resident bytes currently charged to the group
        self._group_mem: Dict[str, int] = {}
        #: group label -> bytes currently spilled out of the group
        self._group_spilled: Dict[str, int] = {}
        #: group label -> number of entries ever spilled from the group
        self._group_spill_count: Dict[str, int] = {}
        #: unique per-arena spill-file prefix so arenas sharing a
        #: spill_dir cannot clobber each other's entries
        self._tag = uuid.uuid4().hex[:12]
        self._closed = False
        #: serializes all mutation and read paths: the async engine's
        #: workers call get/prefetch while the training thread puts and
        #: discards
        self._lock = threading.RLock()
        # -- statistics ---------------------------------------------------
        self.in_memory_nbytes = 0
        self.spilled_nbytes = 0
        self.peak_in_memory_nbytes = 0
        self.peak_total_nbytes = 0
        #: number of entries ever written to disk
        self.spill_count = 0
        #: number of spilled entries ever staged back by :meth:`prefetch`
        self.prefetch_count = 0
        #: bytes currently held in the prefetch staging cache
        self.prefetched_nbytes = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "arena")

    # -- sanitizer hooks ----------------------------------------------------
    #: ingests caller bytes on put(); the sanitizer swaps in ``bytearray``
    #: so released buffers can be poisoned in place
    _copy_in = staticmethod(bytes)

    def _on_release(self, buf) -> None:
        """Called with each buffer leaving the arena (discard/close);
        the sanitizer overrides this to NaN-poison the bytes."""

    # -- internals ----------------------------------------------------------
    def _ensure_spill_dir(self) -> str:
        """Create/return the spill directory (callers hold the lock)."""
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-arena-")
        else:
            os.makedirs(self._spill_dir, exist_ok=True)
        return self._spill_dir

    def _spill_entry(self, key: int) -> None:
        """Write the entry for *key* to disk (callers hold the lock)."""
        data = self._mem.pop(key)
        path = os.path.join(self._ensure_spill_dir(), f"{self._tag}-{key}.bin")
        with open(path, "wb") as f:
            f.write(data)
        self._disk[key] = (path, len(data))
        self.in_memory_nbytes -= len(data)
        self.spilled_nbytes += len(data)
        self.spill_count += 1
        group = self._group_of.get(key)
        if group is not None:
            self._group_mem[group] -= len(data)
            self._group_spilled[group] = self._group_spilled.get(group, 0) + len(data)
            self._group_spill_count[group] = self._group_spill_count.get(group, 0) + 1

    def _spill_oldest(self) -> None:
        """Write the FIFO-oldest entry to disk (callers hold the lock)."""
        self._spill_entry(next(iter(self._mem)))

    def _maybe_spill(self) -> None:
        """Spill until under the global and per-group budgets (callers
        hold the lock).  Group budgets are enforced first so a hot group
        spills its own oldest entries rather than pushing the overflow
        onto unbudgeted groups via the global FIFO."""
        for group, budget in self._group_budgets.items():
            while self._group_mem.get(group, 0) > budget:
                key = next(
                    (k for k in self._mem if self._group_of.get(k) == group), None
                )
                if key is None:
                    break
                self._spill_entry(key)
        if self.budget_bytes is None:
            return
        while self._mem and self.in_memory_nbytes > self.budget_bytes:
            self._spill_oldest()

    def _track_peaks(self) -> None:
        """Update resident high-water marks (callers hold the lock)."""
        # Resident bytes include the prefetch staging cache: it is real
        # memory even though it duplicates disk and bypasses the FIFO
        # budget (staging volume is bounded by the caller, not the arena).
        resident = self.in_memory_nbytes + self.prefetched_nbytes
        self.peak_in_memory_nbytes = max(self.peak_in_memory_nbytes, resident)
        self.peak_total_nbytes = max(self.peak_total_nbytes, self.total_nbytes)

    # -- API ---------------------------------------------------------------
    def put(self, data: bytes, group: Optional[str] = None) -> int:
        """Store *data*; returns the key for :meth:`get`/:meth:`pop`.

        *group* tags the entry for per-group budget accounting (see
        :meth:`set_group_budget`); untagged entries are only subject to
        the arena-wide budget."""
        with profiler.stage("arena-io"), self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            key = self._next_key
            self._next_key += 1
            blob = self._copy_in(data)
            self._mem[key] = blob
            self.in_memory_nbytes += len(blob)
            if group is not None:
                self._group_of[key] = group
                self._group_mem[group] = self._group_mem.get(group, 0) + len(blob)
            # Peaks reflect the true resident high-water mark: the new entry
            # is held in memory before any spill relieves the budget.
            self._track_peaks()
            self._maybe_spill()
            return key

    def set_group_budget(self, group: str, budget_bytes: int) -> None:
        """Cap the resident bytes of entries tagged with *group*.

        Entries stored via ``put(data, group=...)`` share the group's
        sub-budget, carved out of (and enforced in addition to) the
        arena-wide ``budget_bytes``; overflowing entries spill to disk
        oldest-first within the group.  Takes effect immediately:
        already-resident entries over the cap are spilled on the spot.
        """
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            self._group_budgets[group] = budget_bytes
            self._maybe_spill()

    def group_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-group accounting for every group with a budget or live
        entries: budget (-1 when unbudgeted), resident bytes, spilled
        bytes, and cumulative spill count."""
        with self._lock:
            groups = set(self._group_budgets)
            groups.update(self._group_mem)
            groups.update(self._group_spilled)
            return {
                group: {
                    "budget_bytes": self._group_budgets.get(group, -1),
                    "in_memory_nbytes": self._group_mem.get(group, 0),
                    "spilled_nbytes": self._group_spilled.get(group, 0),
                    "spill_count": self._group_spill_count.get(group, 0),
                }
                for group in sorted(groups)
            }

    def get(self, key: int) -> bytes:
        """Read the bytes for *key* without releasing the entry.

        A staged prefetch copy is consumed (handed off) by the first
        read — the cache exists to bridge prefetch-to-use, not to hold a
        duplicate of the spill file indefinitely."""
        with self._lock:
            if key in self._mem:
                return self._mem[key]
            staged = self._staged.pop(key, None)
            if staged is not None:
                self.prefetched_nbytes -= len(staged)
                return staged
            try:
                path, _ = self._disk[key]
            except KeyError:
                raise KeyError(f"arena key {key} not found") from None
        # Disk read outside the lock so concurrent prefetch workers and
        # the training thread overlap their I/O instead of serializing.
        try:
            with profiler.stage("arena-io"), open(path, "rb") as f:
                return f.read()
        except OSError:
            # Either a genuine I/O failure, or we raced a concurrent
            # discard/close of this key (which unlinks the file only
            # after removing the key from _disk under the lock).
            with self._lock:
                if key in self._mem:
                    return self._mem[key]
                staged = self._staged.pop(key, None)
                if staged is not None:
                    self.prefetched_nbytes -= len(staged)
                    return staged
                if key in self._disk:
                    raise  # entry still registered: a real disk error
            raise KeyError(f"arena key {key} not found") from None

    def prefetch(self, keys: Iterable[int], max_bytes: Optional[int] = None) -> int:
        """Stage spilled entries back into memory ahead of use.

        Reads the spill files for every *key* still on disk into an
        in-memory cache so the subsequent :meth:`get` (typically on the
        backward pass's critical path) is memory-speed.  Unknown,
        resident, or already-staged keys are skipped.  The disk entry and
        byte accounting are untouched — staging is a one-shot read-side
        handoff, consumed by the first :meth:`get` (or dropped at
        :meth:`discard`), so the bytes are never held in duplicate
        longer than the prefetch-to-use window.  Staged bytes are NOT
        subject to the FIFO budget but do count toward the reported
        resident peak; volume is bounded either by the caller (the async
        engine stages at most its prefetch window) or by *max_bytes* —
        a staging-cache ceiling enforced atomically under the arena lock
        (so concurrent prefetchers cannot jointly overshoot), with one
        entry always admitted when the cache is empty so progress is
        guaranteed even when ``max_bytes`` is smaller than the entry.
        Returns the number of entries staged.
        """
        staged = 0
        for key in keys:
            with self._lock:
                if self._closed:
                    break
                if key in self._mem or key in self._staged:
                    continue
                entry = self._disk.get(key)
                if entry is None:
                    continue
                if (
                    max_bytes is not None
                    and self._staged
                    and self.prefetched_nbytes + entry[1] > max_bytes
                ):
                    break  # cap reached; keys are in priority order
                path = entry[0]
            # Read outside the lock (see get()); revalidate before
            # inserting in case the entry was discarded meanwhile.
            try:
                with profiler.stage("arena-io"), open(path, "rb") as f:
                    data = f.read()
            except OSError:
                continue
            with self._lock:
                if self._closed or key not in self._disk or key in self._staged:
                    continue
                if (
                    max_bytes is not None
                    and self._staged
                    and self.prefetched_nbytes + len(data) > max_bytes
                ):
                    break  # lost the room to a concurrent prefetcher
                self._staged[key] = data
                self.prefetched_nbytes += len(data)
                self.prefetch_count += 1
                self._track_peaks()
                staged += 1
        return staged

    def spill_bytes(self, nbytes: int) -> int:
        """Force FIFO-oldest resident entries to disk until at least
        *nbytes* have spilled (or nothing resident remains); returns the
        bytes actually spilled.  The cross-tenant pressure valve an
        :class:`ArenaPool` turns when the *pool* budget — not this
        arena's own — is exceeded."""
        spilled = 0
        with profiler.stage("arena-io"), self._lock:
            if self._closed:
                return 0
            while self._mem and spilled < nbytes:
                key = next(iter(self._mem))
                spilled += len(self._mem[key])
                self._spill_entry(key)
        return spilled

    def pop(self, key: int) -> bytes:
        """Read and release the entry (spill files are deleted).

        The caller owns *key* (concurrent pops of the same key are a
        caller bug), so the read happens outside the lock like
        :meth:`get` and only the release itself serializes."""
        data = self.get(key)
        self.discard(key)
        return data

    def discard(self, key: int) -> None:
        """Release the entry without reading it; unknown keys are a no-op."""
        with self._lock:
            staged = self._staged.pop(key, None)
            if staged is not None:
                self.prefetched_nbytes -= len(staged)
                self._on_release(staged)
            group = self._group_of.pop(key, None)
            if key in self._mem:
                buf = self._mem.pop(key)
                self.in_memory_nbytes -= len(buf)
                if group is not None:
                    self._group_mem[group] -= len(buf)
                self._on_release(buf)
                return
            entry = self._disk.pop(key, None)
            if entry is not None:
                path, nbytes = entry
                self.spilled_nbytes -= nbytes
                if group is not None:
                    self._group_spilled[group] -= nbytes
                try:
                    os.remove(path)
                except OSError:
                    pass

    def __contains__(self, key: int) -> bool:
        with self._lock:
            return key in self._mem or key in self._disk

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem) + len(self._disk)

    @property
    def total_nbytes(self) -> int:
        """Live bytes across memory and disk."""
        with self._lock:  # re-entrant: also read from _track_peaks under put
            return self.in_memory_nbytes + self.spilled_nbytes

    def close(self) -> None:
        """Drop every entry, delete spill files, and remove the owned
        spill directory (a user-provided directory is left in place,
        minus this arena's files)."""
        with self._lock:
            if self._closed:
                return
            for buf in self._mem.values():
                self._on_release(buf)
            for buf in self._staged.values():
                self._on_release(buf)
            self._mem.clear()
            self._staged.clear()
            for path, _ in self._disk.values():
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._disk.clear()
            self._group_of.clear()
            self._group_mem.clear()
            self._group_spilled.clear()
            self.in_memory_nbytes = 0
            self.spilled_nbytes = 0
            self.prefetched_nbytes = 0
            if self._owns_spill_dir and self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_dir = None
            self._closed = True

    def __enter__(self) -> "ByteArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        budget = "none" if self.budget_bytes is None else f"{self.budget_bytes}B"
        with self._lock:
            entries = len(self._mem) + len(self._disk)
            mem = self.in_memory_nbytes
            disk = self.spilled_nbytes
        return (
            f"ByteArena(entries={entries}, mem={mem}B, "
            f"disk={disk}B, budget={budget})"
        )


class _PooledArena(ByteArena):
    """A tenant's member arena inside an :class:`ArenaPool`.

    Behaves exactly like a standalone :class:`ByteArena` under its own
    declared budget; additionally, every ``put`` notifies the pool — with
    no lock held — so cross-tenant pressure can spill *someone* (fairly,
    maybe not this tenant) when the aggregate exceeds the pool budget.
    Lock order is strictly pool -> member: the member never calls into
    the pool while holding its own lock.
    """

    def __init__(self, pool: "ArenaPool", tenant: str, budget_bytes, spill_dir):
        super().__init__(budget_bytes=budget_bytes, spill_dir=spill_dir)
        self._pool = pool
        self.tenant = tenant
        #: bytes spilled by pool-level (cross-tenant) pressure, as
        #: opposed to this arena's own budget; mutated by the pool's
        #: rebalance with the pool lock held
        self.pool_spilled_bytes = 0
        self.pool_spill_events = 0

    def put(self, data: bytes, group=None) -> int:
        key = super().put(data, group=group)
        # Own lock released above; the pool may now take its lock and
        # spill across tenants without inverting the pool->member order.
        self._pool._rebalance()
        return key

    def close(self) -> None:
        super().close()
        self._pool._on_member_closed(self)


class ArenaPool:
    """One byte budget carved across many tenants' arenas, with fair
    cross-tenant spill — :meth:`ByteArena.group_stats`-style accounting
    lifted to the pool level.

    Each tenant gets a full :class:`ByteArena` via :meth:`create_arena`
    (its *declared* budget is enforced per-tenant exactly as standalone);
    on top, the pool enforces one aggregate ``budget_bytes`` over every
    member's resident bytes.  When the aggregate overflows — the normal
    state of an oversubscribed multi-tenant host — the pool spills from
    the tenant furthest over its **fair share**
    (``pool_budget * declared / sum(declared)``), oldest entries first
    within that tenant, until the pool fits.  Spilling is value-neutral
    (bytes move to disk, reads transparently follow), so tenants under
    pool pressure see latency, never wrong data.

    All members share one spill directory (per-arena file tags keep them
    disjoint); the pool owns it when none is supplied.  Thread-safety:
    member puts from concurrent tenant sessions serialize through the
    pool lock only during rebalance, and the lock order is always
    pool -> member, so tenant-side traffic never deadlocks against a
    rebalance in progress.
    """

    def __init__(self, budget_bytes: int, spill_dir: Optional[str] = None):
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._spill_dir = spill_dir
        self._owns_spill_dir = spill_dir is None
        #: tenant name -> member arena / declared budget (guarded by _lock)
        self._members: Dict[str, _PooledArena] = {}
        self._declared: Dict[str, int] = {}
        self._closed = False
        self._lock = threading.Lock()
        # -- statistics (mutated under _lock) ------------------------------
        self.rebalances = 0
        self.forced_spill_count = 0
        self.forced_spill_bytes = 0
        from repro.core.sanitizer import maybe_instrument

        maybe_instrument(self, "arena_pool")

    # -- membership ---------------------------------------------------------
    def create_arena(self, tenant: str, budget_bytes: Optional[int] = None) -> ByteArena:
        """A new member arena for *tenant* with its own *budget_bytes*
        (the tenant's declared working-set cap; ``None`` declares the
        whole pool).  Raises for duplicate tenant names."""
        with self._lock:
            if self._closed:
                raise RuntimeError("arena pool is closed")
            if tenant in self._members:
                raise ValueError(f"tenant {tenant!r} already has an arena")
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-pool-")
            declared = self.budget_bytes if budget_bytes is None else int(budget_bytes)
            member = _PooledArena(self, tenant, budget_bytes, self._spill_dir)
            self._members[tenant] = member
            self._declared[tenant] = declared
            return member

    def release(self, tenant: str) -> None:
        """Close and drop *tenant*'s arena (unknown tenants are a no-op)."""
        with self._lock:
            member = self._members.get(tenant)
        if member is not None:
            member.close()  # calls back into _on_member_closed

    def _on_member_closed(self, member: "_PooledArena") -> None:
        with self._lock:
            if self._members.get(member.tenant) is member:
                del self._members[member.tenant]
                del self._declared[member.tenant]

    # -- the fair-spill valve -----------------------------------------------
    def _rebalance(self) -> None:
        """Spill across tenants until the aggregate fits the pool budget.

        Victim selection is deterministic: the tenant with the largest
        resident excess over its fair share, ties broken by name — so a
        fixed put sequence always produces the same spill trace.
        """
        with self._lock:
            if self._closed:
                return
            self.rebalances += 1
            members = dict(self._members)
            total_declared = sum(self._declared.values())
            exhausted = set()
            while True:
                resident = {
                    name: arena.in_memory_nbytes
                    for name, arena in members.items()
                    if name not in exhausted
                }
                excess = sum(resident.values()) - self.budget_bytes
                if excess <= 0 or not resident:
                    return
                victim = max(
                    sorted(resident),
                    key=lambda name: resident[name] - self._fair_share(name, total_declared),
                )
                over_share = resident[victim] - self._fair_share(victim, total_declared)
                want = min(excess, max(over_share, 1))
                spilled = members[victim].spill_bytes(int(want))
                if spilled <= 0:
                    exhausted.add(victim)
                    continue
                self.forced_spill_count += 1
                self.forced_spill_bytes += spilled
                members[victim].pool_spilled_bytes += spilled
                members[victim].pool_spill_events += 1

    def _fair_share(self, tenant: str, total_declared: int) -> float:
        """Callers hold the lock."""
        if total_declared <= 0:
            return self.budget_bytes / max(len(self._members), 1)
        return self.budget_bytes * self._declared[tenant] / total_declared

    # -- accounting ---------------------------------------------------------
    @property
    def declared_bytes(self) -> int:
        with self._lock:
            return sum(self._declared.values())

    @property
    def in_memory_nbytes(self) -> int:
        with self._lock:
            return sum(a.in_memory_nbytes for a in self._members.values())

    @property
    def spilled_nbytes(self) -> int:
        with self._lock:
            return sum(a.spilled_nbytes for a in self._members.values())

    def stats(self) -> Dict[str, object]:
        """Pool-level accounting, one row per tenant — the cross-tenant
        twin of :meth:`ByteArena.group_stats`."""
        with self._lock:
            total_declared = sum(self._declared.values())
            tenants = {}
            for name in sorted(self._members):
                arena = self._members[name]
                tenants[name] = {
                    "declared_bytes": self._declared[name],
                    "fair_share_bytes": int(self._fair_share(name, total_declared)),
                    "in_memory_nbytes": arena.in_memory_nbytes,
                    "spilled_nbytes": arena.spilled_nbytes,
                    "spill_count": arena.spill_count,
                    "pool_spilled_bytes": arena.pool_spilled_bytes,
                    "pool_spill_events": arena.pool_spill_events,
                    "entries": len(arena),
                }
            return {
                "budget_bytes": self.budget_bytes,
                "declared_bytes": total_declared,
                "in_memory_nbytes": sum(t["in_memory_nbytes"] for t in tenants.values()),
                "spilled_nbytes": sum(t["spilled_nbytes"] for t in tenants.values()),
                "rebalances": self.rebalances,
                "forced_spill_count": self.forced_spill_count,
                "forced_spill_bytes": self.forced_spill_bytes,
                "tenants": tenants,
            }

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Close every member arena and remove the owned spill dir."""
        with self._lock:
            if self._closed:
                return
            members = list(self._members.values())
        for member in members:
            member.close()
        with self._lock:
            self._closed = True
            if self._owns_spill_dir and self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_dir = None

    def __enter__(self) -> "ArenaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._members)
            declared = sum(self._declared.values())
        return (
            f"ArenaPool(tenants={n}, budget={self.budget_bytes}B, "
            f"declared={declared}B)"
        )
