"""The memory-efficient training framework (Figure 7 wiring).

:class:`CompressedTraining` glues the pieces together exactly as the
paper's Figure 7 describes, per convolutional layer per iteration:

1. **Parameter collection** — backward taps record each conv layer's
   loss magnitude L_bar; the compressing context records activation
   sparsity R at pack time; the optimizer exposes momentum.  Collection
   runs every W iterations (plus a warm-up).
2. **Gradient assessment** — Eq. 8 turns momentum into a sigma budget.
3. **Activation assessment** — Eq. 9 turns the budget into a per-layer
   absolute error bound.
4. **Adaptive compression** — the saved-tensor context compresses each
   conv activation with its layer's bound on the forward pass and
   decompresses on backward (with the zero-preserving filter).

Execution is staged through a pluggable **compression engine**
(:mod:`repro.core.engine`), the paper's overlap pipeline:

* **Pack stage** (forward): each conv activation is handed to the
  engine; under ``engine="async"`` the compression job runs on a worker
  pool so packing layer *i* overlaps layer *i+1*'s forward compute,
  while the handle returns immediately.  Finalization (arena write +
  tracker charge) happens in submission order, keeping accounting
  byte-exact versus the sync path.
* **Prefetch stage** (between passes): the engine records the forward
  pack order and speculatively materializes outstanding handles —
  reading arena-spilled bytes back and decompressing — in *reverse*
  order, ahead of where backpropagation will need them.
* **Unpack stage** (backward): each layer's reconstruction is either the
  completed prefetch or an inline decompress, followed by the
  zero-preserving filter; every handle is released to the tracker
  exactly once.

``engine="sync"`` (the default) runs all three stages inline and defines
the reference numbers: async results are bit-identical for every
registry codec.

Usage::

    session = CompressedTraining(network, optimizer, engine="async")
    session.attach(trainer)
    trainer.train(batches(...))
    print(session.tracker.overall_ratio)
    trainer.close()  # or session.close(): stops the engine's workers

.. note::
   New code should prefer the declarative front door,
   :func:`repro.api.build_session`: one serializable
   :class:`~repro.api.config.SessionConfig` composes the codec,
   per-layer policy rules, storage, engine, adaptive controller, and
   profiler, and round-trips through JSON for reproducible runs.
   ``CompressedTraining(...)`` remains supported as a thin shim — its
   declarative arguments are normalized into the same config tree
   (exposed as :attr:`CompressedTraining.session_config`) and the two
   construction paths are equivalence-tested bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.compression.registry import Codec, get_codec
from repro.core.activation_store import CompressingContext
from repro.core.arena import ByteArena
from repro.core.engine import CompressionEngine
from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.gradient_assessment import GradientAssessor
from repro.core.memory_tracker import MemoryTracker
from repro.core.param_store import ParamStore
from repro.core.policy_table import PolicyTable
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D
from repro.nn.network import iter_layers, set_saved_ctx
from repro.nn.optim import SGD
from repro.nn.trainer import IterationRecord, Trainer

__all__ = ["CompressedTraining"]


def _warn_legacy_compressed_training(**knobs) -> None:
    """One DeprecationWarning per hand-wired construction, with a
    migration hint for each constructor knob actually passed."""
    from repro.utils.deprecation import warn_legacy

    hints = {
        "compressor": "compressor=... -> config.codec = CodecSpec(name, options)",
        "config": "config=AdaptiveConfig(...) -> config.adaptive = AdaptiveSpec(...)",
        "storage": "storage=ByteArena(...) -> config.storage.activations = 'arena' (+ budget_bytes)",
        "param_storage": "param_storage=... -> config.storage.params = 'arena' (+ param_budget_bytes / param_codec)",
        "engine": "engine=... -> config.engine = EngineSpec(kind, workers, ...)",
        "policy_table": "policy_table=... -> config.rules = [PolicyRule(...), ...]",
        "adaptive": "adaptive=False -> config.adaptive.enabled = False",
    }
    used = [
        hints[name]
        for name, value in knobs.items()
        if value is not None and not (name == "adaptive" and value is True)
    ]
    lines = "".join(f"\n  {hint}" for hint in used)
    warn_legacy(
        "CompressedTraining(...) is a legacy shim; build the equivalent "
        "session with repro.api.build_session(network, SessionConfig(...))."
        + (lines if lines else "")
    )


class CompressedTraining:
    """Session object installing adaptive activation compression.

    Parameters
    ----------
    network, optimizer:
        The model whose conv layers will be compressed and the SGD
        optimizer whose momentum drives the gradient assessment.
    compressor:
        Codec for activations: any object following the registry's
        :class:`~repro.compression.registry.Codec` protocol, or a
        registry key string (``"szlike"``, ``"chunked"``, ...) resolved
        via :func:`~repro.compression.registry.get_codec`.  Defaults to
        the faithful cuSZ-style pipeline with the zero-preserving filter
        enabled.
    config:
        :class:`AdaptiveConfig`; defaults to the paper's settings except
        W, which defaults lower (50) because CPU-scale experiments run
        hundreds, not hundreds of thousands, of iterations.
    storage:
        Optional :class:`ByteArena` — packed activations are then held
        as serialized byte strings under the arena's in-memory budget
        (spill-to-disk overflow) and the tracker reports physical bytes.
    param_storage:
        Optional :class:`~repro.core.param_store.ParamStore` (or a
        :class:`ByteArena` to wrap in one) — the model's weights and the
        optimizer's slots then live as arena-backed bytes too,
        materialized just-in-time around each layer's
        forward/backward/update, making the *whole* training state
        out-of-core rather than just the activations.  Under
        ``engine="async"`` the reverse-order prefetch stages upcoming
        layers' spilled parameter bytes ahead of backward.
    engine:
        ``"sync"`` (default), ``"async"``, or a
        :class:`~repro.core.engine.CompressionEngine` instance — whether
        pack/unpack run inline or overlap compute on a worker pool with
        reverse-order prefetch (bit-identical results either way).
    policy_table:
        Optional :class:`~repro.core.policy_table.PolicyTable` — per-layer
        first-match rules giving matched layers their own codec, error
        bound (fixed or adaptive with per-rule clamps), and storage
        class; *compressor* and the adaptive regime stay the defaults
        for unmatched layers.  Usually built declaratively through
        :func:`repro.api.build_session`.
    adaptive:
        ``False`` disables the Eq. 8/9 controller entirely: every layer
        keeps its warm-up or rule-pinned bound and no per-iteration
        statistics are collected.  (The api layer's
        ``AdaptiveSpec(enabled=False)`` maps here.)
    """

    def __init__(
        self,
        network: Layer,
        optimizer: SGD,
        compressor: Union[Codec, str, None] = None,
        config: Optional[AdaptiveConfig] = None,
        tracker: Optional[MemoryTracker] = None,
        storage: Optional[ByteArena] = None,
        param_storage: Union[ParamStore, ByteArena, None] = None,
        engine: Union[CompressionEngine, str, None] = None,
        policy_table: Optional[PolicyTable] = None,
        adaptive: bool = True,
    ):
        _warn_legacy_compressed_training(
            compressor=compressor,
            config=config,
            storage=storage,
            param_storage=param_storage,
            engine=engine,
            policy_table=policy_table,
            adaptive=adaptive,
        )
        self.network = network
        self.optimizer = optimizer
        self.config = config or AdaptiveConfig(W=50)
        self.tracker = tracker or MemoryTracker()
        #: the declarative arguments this shim was called with, kept so
        #: :attr:`session_config` can rebuild the equivalent SessionConfig
        self._shim_args = {
            "compressor": compressor,
            "storage": storage,
            "param_storage": param_storage,
            "engine": engine,
            "policy_table": policy_table,
        }
        self.adaptive_enabled = bool(adaptive)
        if isinstance(compressor, str):
            compressor = get_codec(compressor)
        self.ctx = CompressingContext(
            compressor=compressor
            or get_codec("szlike", entropy="huffman", zero_filter=True),
            initial_rel_eb=self.config.initial_rel_eb,
            tracker=self.tracker,
            storage=storage,
            engine=engine,
            policy_table=policy_table,
        )
        #: the resolved execution strategy (SyncEngine / AsyncEngine)
        self.engine = self.ctx.engine
        self.assessor = GradientAssessor(optimizer, self.config.sigma_fraction)
        self.controller = AdaptiveController(self.config, self.assessor, self.ctx)

        self.compressed_layers = set_saved_ctx(
            network, self.ctx, predicate=lambda l: l.compressible
        )
        if self.compressed_layers == 0:
            raise ValueError("network has no compressible (conv) layers")
        self._mark_relu_fed_convs()

        #: conv layer name -> its weight Parameter (per-layer momentum)
        self.conv_params: Dict[str, Parameter] = {}
        self._install_taps()
        # warm-up: collect from iteration 0 (never when the controller
        # is disabled — fixed/rule-pinned bounds need no statistics)
        self._collect_next = self.adaptive_enabled

        #: optional out-of-core parameter/optimizer state (the tentpole
        #: knob): attach AFTER the taps so the JIT bind wrapper is
        #: outermost — weights are materialized before the tapped
        #: backward runs.
        self.param_store: Optional[ParamStore] = None
        if param_storage is not None:
            if isinstance(param_storage, ByteArena):
                param_storage = ParamStore(storage=param_storage, tracker=self.tracker)
            elif len(param_storage) == 0:
                # Nothing adopted yet: fold the store's accounting into
                # the session tracker so persistent parameter bytes and
                # activation bytes share one set of books.
                param_storage.tracker = self.tracker
            self.param_store = param_storage
            self.param_store.attach(network, optimizer)
            self.ctx.param_store = self.param_store

    # -- wiring ------------------------------------------------------------
    def _mark_relu_fed_convs(self) -> None:
        """Conv layers directly fed by a ReLU get the Section 4.4
        recompute-the-activation-function treatment on decompression
        (exact zero restoration regardless of codec behaviour)."""
        from repro.nn.layers.activations import ReLU
        from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
        from repro.nn.network import Residual, Sequential

        mark = self.ctx.relu_recompute_layers.add

        def walk(layer, nonneg: bool) -> bool:
            """Propagate 'input is provably non-negative' through the
            structure; returns whether the *output* is non-negative."""
            if isinstance(layer, Sequential):
                for child in layer.layers:
                    nonneg = walk(child, nonneg)
                return nonneg
            if isinstance(layer, Residual):
                walk(layer.main, nonneg)
                if layer.shortcut is not None:
                    walk(layer.shortcut, nonneg)
                return False  # sum of branches: no guarantee
            if isinstance(layer, Conv2D):
                if nonneg:
                    mark(layer.name)
                return False
            if isinstance(layer, ReLU):
                return True
            if isinstance(layer, (MaxPool2D, AvgPool2D)):
                return nonneg  # pooling preserves non-negativity
            return False

        walk(self.network, False)

    def _install_taps(self) -> None:
        """Wrap each conv layer's backward to observe dL/dout (L_bar)."""
        for layer in iter_layers(self.network):
            if not isinstance(layer, Conv2D):
                continue
            self.conv_params[layer.name] = layer.weight
            orig = layer.backward

            def tapped(dout, _layer=layer, _orig=orig):
                if self._collect_next:
                    self.controller.record_loss(_layer.name, dout)
                return _orig(dout)

            layer.backward = tapped

    def attach(self, trainer: Trainer) -> "CompressedTraining":
        """Register the per-iteration hook on *trainer* (and the engine
        shutdown on ``trainer.close()``)."""
        trainer.post_backward_hooks.append(self._on_iteration)
        trainer.close_hooks.append(lambda tr: self.close())
        return self

    # -- per-iteration hook --------------------------------------------------
    def _on_iteration(self, trainer: Trainer, record: IterationRecord) -> None:
        # A handle packed but never consumed this iteration (layer saved a
        # tensor backward didn't pop) must still be finalized before the
        # iteration's accounting is read.
        self.ctx.flush()
        ratio = self.tracker.end_iteration()
        record.extras["compression_ratio"] = ratio
        if self._collect_next:
            # Statistics for this iteration are in; refresh the bounds the
            # next forward pass will compress under.
            new_bounds = self.controller.update_error_bounds(self.conv_params)
            if new_bounds:
                record.extras["mean_error_bound"] = float(
                    np.mean(list(new_bounds.values()))
                )
        self._collect_next = self.adaptive_enabled and self.controller.should_collect(
            trainer.iteration + 1
        )

    # -- reporting -----------------------------------------------------------
    @property
    def session_config(self):
        """The :class:`~repro.api.config.SessionConfig` equivalent to this
        session's declarative arguments, or ``None`` when the session was
        built from live objects the config schema cannot describe (a
        custom codec instance outside the registry, a hand-built engine,
        a policy table without declarative source rules).

        ``build_session(network, session.session_config)`` on a fresh
        network reproduces this session bit-for-bit — the equivalence the
        shim tests pin.
        """
        from repro.api.config import capture_session_config

        return capture_session_config(
            compressor=self._shim_args["compressor"],
            adaptive_config=self.config,
            adaptive_enabled=self.adaptive_enabled,
            storage=self._shim_args["storage"],
            param_storage=self._shim_args["param_storage"],
            engine=self._shim_args["engine"],
            policy_table=self._shim_args["policy_table"],
            optimizer=self.optimizer,
        )

    @property
    def error_bounds(self) -> Dict[str, float]:
        return dict(self.ctx.error_bounds)

    @property
    def compression_ratios(self) -> Dict[str, float]:
        return dict(self.ctx.observed_ratio)

    def ratio_history(self) -> List[float]:
        return list(self.tracker.iteration_ratios)

    def detach(self) -> None:
        """Restore plain storage and resident parameters (keeps tap
        wrappers, which become no-ops)."""
        from repro.nn.layers.base import SavedTensorContext

        set_saved_ctx(self.network, SavedTensorContext(), predicate=lambda l: l.compressible)
        self.ctx.enabled = False
        if self.param_store is not None:
            self.param_store.detach()

    def close(self) -> None:
        """Finalize in-flight packs, stop the engine's worker pool, and
        restore out-of-core parameters to residency.

        Idempotent; also invoked through ``trainer.close()`` once the
        session is attached."""
        self.ctx.close()
        if self.param_store is not None:
            self.param_store.close()
