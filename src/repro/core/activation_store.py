"""Compressed activation storage: the saved-tensor context the framework
installs on convolutional layers (Section 4.4, "adaptive compression").

``pack`` runs during the forward pass: the activation is compressed with
the layer's current error bound and only the compressed representation is
retained.  ``unpack`` runs when backpropagation reaches the layer again
and decompresses.  Per-layer error bounds are owned by the adaptive
controller; this class is the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compression.szlike import CompressedTensor, SZCompressor
from repro.core.memory_tracker import MemoryTracker
from repro.nn.layers.base import Layer, SavedTensorContext

__all__ = ["CompressingContext", "PackedActivation"]


@dataclass
class PackedActivation:
    """Handle stored in place of the raw activation tensor."""

    compressed: CompressedTensor
    raw_nbytes: int
    nonzero_ratio: float


class CompressingContext(SavedTensorContext):
    """Saved-tensor context that compresses 4-D activations on pack.

    Parameters
    ----------
    compressor:
        The :class:`SZCompressor` (or API-compatible codec).
    initial_rel_eb:
        Until the controller assigns a layer an absolute bound, the first
        pack resolves ``eb = initial_rel_eb * value_range`` — a
        conservative warm-up choice.
    tracker:
        Optional :class:`MemoryTracker` for accounting.
    """

    def __init__(
        self,
        compressor: Optional[SZCompressor] = None,
        initial_rel_eb: float = 1e-3,
        tracker: Optional[MemoryTracker] = None,
    ):
        self.compressor = compressor or SZCompressor(error_bound=1e-3, entropy="huffman")
        if initial_rel_eb <= 0:
            raise ValueError("initial_rel_eb must be positive")
        self.initial_rel_eb = float(initial_rel_eb)
        self.tracker = tracker or MemoryTracker()
        #: layers whose saved input is a ReLU output: after decompression
        #: the activation function is recomputed (``max(x, 0)``), the
        #: paper's first zero-preservation mechanism (Section 4.4) — it
        #: restores exact zeros even when the codec drifts them.
        self.relu_recompute_layers: set = set()
        #: per-layer absolute error bounds, written by the controller
        self.error_bounds: Dict[str, float] = {}
        #: per-layer nonzero ratio R observed at the latest pack
        self.observed_nonzero: Dict[str, float] = {}
        #: per-layer latest achieved compression ratio
        self.observed_ratio: Dict[str, float] = {}
        self.enabled = True

    def resolve_error_bound(self, layer: Layer, arr: np.ndarray) -> float:
        eb = self.error_bounds.get(layer.name)
        if eb is not None:
            return eb
        vrange = float(arr.max() - arr.min())
        eb = self.initial_rel_eb * vrange if vrange > 0 else self.initial_rel_eb
        self.error_bounds[layer.name] = eb
        return eb

    # -- SavedTensorContext interface --------------------------------------
    def pack(self, layer: Layer, key: str, arr: np.ndarray):
        if not self.enabled or not isinstance(arr, np.ndarray) or arr.ndim != 4:
            return arr
        eb = self.resolve_error_bound(layer, arr)
        ct = self.compressor.compress(arr, error_bound=eb)
        nz = float(np.count_nonzero(arr)) / arr.size
        self.observed_nonzero[layer.name] = nz
        self.observed_ratio[layer.name] = ct.compression_ratio
        self.tracker.record_pack(layer.name, arr.nbytes, ct.nbytes)
        return PackedActivation(compressed=ct, raw_nbytes=arr.nbytes, nonzero_ratio=nz)

    def unpack(self, layer: Layer, key: str, handle) -> np.ndarray:
        if not isinstance(handle, PackedActivation):
            return handle
        out = self.compressor.decompress(handle.compressed)
        if layer.name in self.relu_recompute_layers:
            # Recompute the activation function (Section 4.4): negative
            # drift is erased by the ReLU; positive drift is bounded by
            # eb and true values <= eb quantize to the zero grid point,
            # so clamping the sub-eb band restores exact zeros.
            np.maximum(out, 0, out=out)
            out[out <= handle.compressed.error_bound] = 0
        self.tracker.record_release(handle.raw_nbytes, handle.compressed.nbytes)
        return out

    def discard(self, layer: Layer, key: str, handle) -> None:
        if isinstance(handle, PackedActivation):
            self.tracker.record_release(handle.raw_nbytes, handle.compressed.nbytes)
