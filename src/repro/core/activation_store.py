"""Compressed activation storage: the saved-tensor context the framework
installs on convolutional layers (Section 4.4, "adaptive compression").

``pack`` runs during the forward pass: the activation is compressed with
the layer's current error bound and only the compressed representation is
retained.  ``unpack`` runs when backpropagation reaches the layer again
and decompresses.  Per-layer error bounds are owned by the adaptive
controller; this class is the mechanism.

Two storage regimes:

* **In-process** (default): the live compressed object is kept on the
  handle and its ``nbytes`` accounting charge goes to the tracker.
* **Byte arena** (``storage=ByteArena(...)``): the compressed object is
  serialized to one byte string held in the arena (in-memory budget with
  spill-to-disk overflow, see :mod:`repro.core.arena`), and the tracker
  is charged the *physical* serialized length — footprint numbers become
  byte-exact rather than estimates.

Each packed handle is released to the tracker exactly once, on whichever
of ``unpack``/``discard`` reaches it first; repeated unpacks (e.g. via
``Layer._load``) keep returning data without double-releasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compression.szlike import SZCompressor
from repro.compression.registry import Codec
from repro.compression.registry import dumps as _codec_dumps
from repro.compression.registry import loads as _codec_loads
from repro.core.arena import ByteArena
from repro.core.memory_tracker import MemoryTracker
from repro.nn.layers.base import Layer, SavedTensorContext

__all__ = ["CompressingContext", "PackedActivation"]


@dataclass
class PackedActivation:
    """Handle stored in place of the raw activation tensor."""

    raw_nbytes: int
    nonzero_ratio: float
    #: bytes charged to the tracker: physical serialized length under
    #: arena storage, the ``nbytes`` accounting convention otherwise
    stored_nbytes: int
    #: the live compressed object (populated lazily under arena storage)
    compressed: Optional[object] = None
    #: arena key when the bytes live in a :class:`ByteArena`
    arena_key: Optional[int] = None
    #: True once the tracker has been credited for this handle
    released: bool = False


class CompressingContext(SavedTensorContext):
    """Saved-tensor context that compresses 4-D activations on pack.

    Parameters
    ----------
    compressor:
        Any codec following the registry protocol (``compress(x,
        error_bound=...)`` / ``decompress``), e.g. :class:`SZCompressor`
        or a ``ChunkedCodec`` wrapping it.
    initial_rel_eb:
        Until the controller assigns a layer an absolute bound, the first
        pack resolves ``eb = initial_rel_eb * value_range`` — a
        conservative warm-up choice.
    tracker:
        Optional :class:`MemoryTracker` for accounting.
    storage:
        Optional :class:`ByteArena`.  When given, packed activations are
        held as serialized byte strings in the arena instead of live
        Python objects.
    """

    def __init__(
        self,
        compressor: Optional[Codec] = None,
        initial_rel_eb: float = 1e-3,
        tracker: Optional[MemoryTracker] = None,
        storage: Optional[ByteArena] = None,
    ):
        self.compressor = compressor or SZCompressor(error_bound=1e-3, entropy="huffman")
        if initial_rel_eb <= 0:
            raise ValueError("initial_rel_eb must be positive")
        self.initial_rel_eb = float(initial_rel_eb)
        self.tracker = tracker or MemoryTracker()
        self.storage = storage
        #: layers whose saved input is a ReLU output: after decompression
        #: the activation function is recomputed (``max(x, 0)``), the
        #: paper's first zero-preservation mechanism (Section 4.4) — it
        #: restores exact zeros even when the codec drifts them.
        self.relu_recompute_layers: set = set()
        #: per-layer absolute error bounds, written by the controller
        self.error_bounds: Dict[str, float] = {}
        #: per-layer nonzero ratio R observed at the latest pack
        self.observed_nonzero: Dict[str, float] = {}
        #: per-layer latest achieved compression ratio (physical bytes
        #: under arena storage)
        self.observed_ratio: Dict[str, float] = {}
        self.enabled = True

    def resolve_error_bound(self, layer: Layer, arr: np.ndarray) -> float:
        eb = self.error_bounds.get(layer.name)
        if eb is not None:
            return eb
        vrange = float(arr.max() - arr.min())
        eb = self.initial_rel_eb * vrange if vrange > 0 else self.initial_rel_eb
        self.error_bounds[layer.name] = eb
        return eb

    # -- release bookkeeping -----------------------------------------------
    def _release(self, handle: PackedActivation) -> None:
        """Credit the tracker (and arena) for *handle* exactly once."""
        if handle.released:
            return
        handle.released = True
        if handle.arena_key is not None and self.storage is not None:
            self.storage.discard(handle.arena_key)
        self.tracker.record_release(handle.raw_nbytes, handle.stored_nbytes)

    # -- SavedTensorContext interface --------------------------------------
    def pack(self, layer: Layer, key: str, arr: np.ndarray):
        if not self.enabled or not isinstance(arr, np.ndarray) or arr.ndim != 4:
            return arr
        eb = self.resolve_error_bound(layer, arr)
        ct = self.compressor.compress(arr, error_bound=eb)
        nz = float(np.count_nonzero(arr)) / arr.size
        if self.storage is not None:
            blob = _codec_dumps(ct)
            handle = PackedActivation(
                raw_nbytes=arr.nbytes,
                nonzero_ratio=nz,
                stored_nbytes=len(blob),
                arena_key=self.storage.put(blob),
            )
        else:
            handle = PackedActivation(
                raw_nbytes=arr.nbytes,
                nonzero_ratio=nz,
                stored_nbytes=ct.nbytes,
                compressed=ct,
            )
        self.observed_nonzero[layer.name] = nz
        self.observed_ratio[layer.name] = (
            arr.nbytes / handle.stored_nbytes if handle.stored_nbytes else 0.0
        )
        self.tracker.record_pack(layer.name, arr.nbytes, handle.stored_nbytes)
        return handle

    def unpack(self, layer: Layer, key: str, handle) -> np.ndarray:
        if not isinstance(handle, PackedActivation):
            return handle
        ct = handle.compressed
        if ct is None:
            # Arena storage: materialize the compressed object from its
            # bytes; keep it on the handle so repeated unpacks still work
            # after the arena entry is released below.
            ct = _codec_loads(self.storage.get(handle.arena_key))
            handle.compressed = ct
        out = self.compressor.decompress(ct)
        if layer.name in self.relu_recompute_layers:
            # Recompute the activation function (Section 4.4): negative
            # drift is erased by the ReLU; positive drift is bounded by
            # eb and true values <= eb quantize to the zero grid point,
            # so clamping the sub-eb band restores exact zeros.  Codecs
            # without a per-element bound (jpeg, lossless) only get the
            # ReLU itself — there is no eb band to clamp.
            np.maximum(out, 0, out=out)
            eb = getattr(ct, "error_bound", None)
            if eb is not None:
                out[out <= eb] = 0
        self._release(handle)
        return out

    def discard(self, layer: Layer, key: str, handle) -> None:
        if isinstance(handle, PackedActivation):
            self._release(handle)
