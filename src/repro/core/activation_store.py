"""Compressed activation storage: the saved-tensor contexts the framework
installs on convolutional layers (Section 4.4, "adaptive compression").

``pack`` runs during the forward pass: the activation is compressed and
only the compressed representation is retained.  ``unpack`` runs when
backpropagation reaches the layer again and decompresses.

:class:`BaseCompressionContext` owns everything the policies share —
handle lifecycle, release-exactly-once tracker accounting, optional
:class:`~repro.core.arena.ByteArena` storage — and delegates *execution*
to an injected :class:`~repro.core.engine.CompressionEngine` strategy:

* ``engine="sync"`` (default): compress/decompress inline, the
  historical behaviour bit-for-bit.
* ``engine="async"``: compression of layer *i*'s activation overlaps
  layer *i+1*'s forward on a worker pool, and outstanding handles
  (including arena-spilled bytes) are prefetched in reverse pack order
  ahead of the backward pass.  Reconstructions and tracker numbers are
  bit-identical to sync for every registry codec.

Subclasses supply only the codec call: :class:`CompressingContext` adds
the paper's adaptive per-layer error bounds, observed-statistics
collection, and the Section 4.4 ReLU-recompute filter;
:class:`~repro.core.policies.CodecPolicy` is the plain fixed-codec
baseline.

Both contexts optionally take a
:class:`~repro.core.policy_table.PolicyTable`: first-match per-layer
rules resolve each compressible layer to its **own** codec, error-bound
regime (fixed or adaptive, with per-rule clamps), and storage class
(arena vs in-process), falling back to the session defaults for
unmatched layers.  Each pack carries its rule's group label into the
tracker, so mixed-codec sessions account per rule as well as per layer.

Two storage regimes:

* **In-process** (default): the live compressed object is kept on the
  handle and its ``nbytes`` accounting charge goes to the tracker.
* **Byte arena** (``storage=ByteArena(...)``): the compressed object is
  serialized to one byte string held in the arena (in-memory budget with
  spill-to-disk overflow, see :mod:`repro.core.arena`), and the tracker
  is charged the *physical* serialized length — footprint numbers become
  byte-exact rather than estimates.

Each packed handle is released to the tracker exactly once, on whichever
of ``unpack``/``discard`` reaches it first; repeated unpacks (e.g. via
``Layer._load``) keep returning data without double-releasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.compression.registry import Codec, get_codec
from repro.compression.registry import dumps as _codec_dumps
from repro.compression.registry import loads as _codec_loads
from repro.core.arena import ByteArena
from repro.core.engine import CompressionEngine, resolve_engine
from repro.core.memory_tracker import MemoryTracker
from repro.core.policy_table import PolicyTable, ResolvedPolicy
from repro.nn.layers.base import Layer, SavedTensorContext

__all__ = ["BaseCompressionContext", "CompressingContext", "PackedActivation"]


# eq=False: handles are tracked by identity (engine _live/_pending lists
# use index/remove); field-wise equality would compare compressed-tensor
# ndarrays and is meaningless for a lifecycle object.
@dataclass(eq=False)
class PackedActivation:
    """Handle stored in place of the raw activation tensor."""

    raw_nbytes: int
    nonzero_ratio: float = 0.0
    #: bytes charged to the tracker: physical serialized length under
    #: arena storage, the ``nbytes`` accounting convention otherwise
    stored_nbytes: int = 0
    #: the live compressed object (populated lazily under arena storage)
    compressed: Optional[object] = None
    #: arena key when the bytes live in a :class:`ByteArena`
    arena_key: Optional[int] = None
    #: True once the tracker has been credited for this handle
    released: bool = False
    #: owning layer, for per-layer tracker/statistics keys
    layer_name: str = ""
    #: policy-rule group label (empty without a PolicyTable) — flows
    #: into the tracker's per-rule ledger when the pack is finalized
    policy_label: str = ""
    #: engine plumbing (internal): outstanding pack / prefetch futures
    #: and the handle's slot in the engine's live-order record
    _pack_future: Optional[object] = field(default=None, repr=False)
    _prefetch_future: Optional[object] = field(default=None, repr=False)
    _live_pos: Optional[int] = field(default=None, repr=False)
    #: True while this handle's raw bytes are charged to the engine's
    #: decode-ahead budget (speculative decompress in flight)
    _unpack_charged: bool = field(default=False, repr=False)


class BaseCompressionContext(SavedTensorContext):
    """Shared saved-tensor machinery for every compressing policy.

    Owns the packed-handle lifecycle, the release-exactly-once memory
    accounting, and the optional byte-arena storage; the injected engine
    decides where and when the pure codec work runs.  Subclasses
    implement :meth:`_make_pack_job` and :meth:`_decompress` (plus the
    optional observation/postprocess hooks).

    Parameters
    ----------
    tracker:
        Optional :class:`MemoryTracker` for accounting.
    storage:
        Optional :class:`ByteArena`.  When given, packed activations are
        held as serialized byte strings in the arena instead of live
        Python objects, and the tracker charge is the physical length.
    engine:
        ``"sync"`` (default), ``"async"``, or a
        :class:`~repro.core.engine.CompressionEngine` instance.
    policy_table:
        Optional :class:`~repro.core.policy_table.PolicyTable` — per-layer
        first-match rules overriding codec / error bound / storage class
        for the layers they match; unmatched layers keep the context
        defaults.
    """

    def __init__(
        self,
        tracker: Optional[MemoryTracker] = None,
        storage: Optional[ByteArena] = None,
        engine: Union[CompressionEngine, str, None] = None,
        policy_table: Optional[PolicyTable] = None,
    ):
        self.tracker = tracker or MemoryTracker()
        self.storage = storage
        self.engine = resolve_engine(engine, self)
        self.policy_table = policy_table
        #: layer name -> codec that packed it (written on the training
        #: thread at submit time, read by engine workers at decompress;
        #: needed because a PolicyTable makes the codec per-layer)
        self._layer_codec: Dict[str, object] = {}
        self.enabled = True
        #: optional :class:`~repro.core.param_store.ParamStore` — when the
        #: model's weights are arena-backed too, the async engine's
        #: reverse-order prefetch stages the upcoming layers' spilled
        #: parameter bytes alongside the spilled activations
        self.param_store = None

    # -- subclass hooks ----------------------------------------------------
    def _should_pack(self, layer: Layer, arr) -> bool:
        return self.enabled and isinstance(arr, np.ndarray) and arr.ndim == 4

    def _make_pack_job(self, layer: Layer, arr: np.ndarray) -> Callable[[], tuple]:
        """Return a zero-arg callable producing ``(ct, blob, extra)``.

        The callable is *pure* compression work — it may run on an engine
        worker thread — so any per-layer state (e.g. the resolved error
        bound) must be captured on the submitting thread, in here.
        ``blob`` is the serialized form (only when storage is set) and
        ``extra`` is subclass payload for :meth:`_observe_pack`.
        """
        raise NotImplementedError

    def _decompress(self, ct, layer_name: str = "") -> np.ndarray:
        """Decompress a codec object (thread-safe, deterministic).

        *layer_name* lets policy-table contexts dispatch to the codec
        that packed the layer; single-codec contexts may ignore it.
        """
        raise NotImplementedError

    # -- policy-table plumbing ---------------------------------------------
    def _policy_for(self, layer_name: str) -> Optional[ResolvedPolicy]:
        if self.policy_table is None:
            return None
        return self.policy_table.resolve(layer_name)

    def _select_codec(self, layer_name: str, default) -> tuple:
        """``(policy, codec)`` for *layer_name*; records the choice for
        decompress dispatch.  Called on the submitting thread only."""
        pol = self._policy_for(layer_name)
        codec = pol.codec if pol is not None and pol.codec is not None else default
        self._layer_codec[layer_name] = codec
        return pol, codec

    def _should_serialize(self, pol: Optional[ResolvedPolicy]) -> bool:
        """Arena-serialize this pack?  Needs an arena, and the rule (if
        any) must not pin the layer to in-process storage."""
        if self.storage is None:
            return False
        return pol is None or pol.storage != "inmem"

    def _observe_pack(self, handle: PackedActivation, ct, extra) -> None:
        """Record per-layer statistics when a pack is finalized."""

    def _postprocess(self, layer: Layer, handle: PackedActivation, out: np.ndarray):
        """Adjust the reconstruction on the training thread at unpack."""
        return out

    # -- engine-facing internals -------------------------------------------
    _loads = staticmethod(_codec_loads)

    def _finalize_pack(self, handle: PackedActivation, payload: tuple) -> None:
        """Commit a finished pack job: arena write + tracker charge.

        Engines call this on the training thread, strictly in submission
        order, so accounting sequences are identical across engines.
        """
        ct, blob, extra = payload
        if self.storage is not None and blob is not None:
            handle.stored_nbytes = len(blob)
            # The policy-group tag lets per-rule arena budgets attribute
            # (and bound) this entry's residency.
            handle.arena_key = self.storage.put(
                blob, group=handle.policy_label or None
            )
        else:
            handle.stored_nbytes = ct.nbytes
            handle.compressed = ct
        self._observe_pack(handle, ct, extra)
        self.tracker.record_pack(
            handle.layer_name,
            handle.raw_nbytes,
            handle.stored_nbytes,
            group=handle.policy_label,
        )

    def _materialize(self, handle: PackedActivation) -> np.ndarray:
        """Decompress *handle*, reading arena bytes if necessary.

        The compressed object is kept on the handle so repeated unpacks
        keep working after the arena entry is released.
        """
        ct = handle.compressed
        if ct is None:
            ct = self._loads(self.storage.get(handle.arena_key))
            handle.compressed = ct
        return self._decompress(ct, handle.layer_name)

    # -- release bookkeeping -----------------------------------------------
    def _release(self, handle: PackedActivation) -> None:
        """Credit the tracker (and arena) for *handle* exactly once."""
        if handle.released:
            return
        handle.released = True
        self.engine.forget(handle)
        if handle.arena_key is not None and self.storage is not None:
            self.storage.discard(handle.arena_key)
        self.tracker.record_release(handle.raw_nbytes, handle.stored_nbytes)

    # -- SavedTensorContext interface --------------------------------------
    def pack(self, layer: Layer, key: str, arr: np.ndarray):
        if not self._should_pack(layer, arr):
            return arr
        handle = PackedActivation(raw_nbytes=arr.nbytes, layer_name=layer.name)
        if self.policy_table is not None:
            handle.policy_label = self.policy_table.group_of(layer.name)
        self.engine.submit_pack(handle, self._make_pack_job(layer, arr))
        return handle

    def unpack(self, layer: Layer, key: str, handle) -> np.ndarray:
        if not isinstance(handle, PackedActivation):
            return handle
        out = self.engine.obtain(handle)
        out = self._postprocess(layer, handle, out)
        self._release(handle)
        return out

    def discard(self, layer: Layer, key: str, handle) -> None:
        if isinstance(handle, PackedActivation):
            # The tracker must see the pack before its release.
            self.engine.ensure_packed(handle)
            self._release(handle)

    # -- lifecycle ---------------------------------------------------------
    def flush(self) -> None:
        """Finalize every in-flight pack (no-op for the sync engine)."""
        self.engine.flush()

    def close(self) -> None:
        """Shut down the engine's worker pool (safe mid-flight)."""
        self.engine.close()


class CompressingContext(BaseCompressionContext):
    """Saved-tensor context that compresses 4-D activations on pack.

    Parameters
    ----------
    compressor:
        Any codec following the registry protocol (``compress(x,
        error_bound=...)`` / ``decompress``), e.g. :class:`SZCompressor`
        or a ``ChunkedCodec`` wrapping it.
    initial_rel_eb:
        Until the controller assigns a layer an absolute bound, the first
        pack resolves ``eb = initial_rel_eb * value_range`` — a
        conservative warm-up choice.  A matching policy rule's
        ``initial_rel_eb`` takes precedence for its layers.
    tracker, storage, engine, policy_table:
        See :class:`BaseCompressionContext`.  With a policy table,
        *compressor* and *initial_rel_eb* become the defaults for layers
        no rule matches; rules with a fixed ``error_bound`` pin their
        layers' bound (the adaptive controller skips them).
    """

    def __init__(
        self,
        compressor: Optional[Codec] = None,
        initial_rel_eb: float = 1e-3,
        tracker: Optional[MemoryTracker] = None,
        storage: Optional[ByteArena] = None,
        engine: Union[CompressionEngine, str, None] = None,
        policy_table: Optional[PolicyTable] = None,
    ):
        super().__init__(
            tracker=tracker, storage=storage, engine=engine, policy_table=policy_table
        )
        self.compressor = compressor or get_codec(
            "szlike", error_bound=1e-3, entropy="huffman"
        )
        if initial_rel_eb <= 0:
            raise ValueError("initial_rel_eb must be positive")
        self.initial_rel_eb = float(initial_rel_eb)
        #: layers whose saved input is a ReLU output: after decompression
        #: the activation function is recomputed (``max(x, 0)``), the
        #: paper's first zero-preservation mechanism (Section 4.4) — it
        #: restores exact zeros even when the codec drifts them.
        self.relu_recompute_layers: set = set()
        #: per-layer absolute error bounds, written by the controller
        self.error_bounds: Dict[str, float] = {}
        #: per-layer nonzero ratio R observed at the latest pack
        self.observed_nonzero: Dict[str, float] = {}
        #: per-layer latest achieved compression ratio (physical bytes
        #: under arena storage)
        self.observed_ratio: Dict[str, float] = {}

    def is_adaptive(self, layer_name: str) -> bool:
        """May the adaptive controller rewrite this layer's bound?
        False for layers whose policy rule pins a fixed bound."""
        pol = self._policy_for(layer_name)
        return pol is None or pol.adaptive

    def resolve_error_bound(self, layer: Layer, arr: np.ndarray) -> float:
        pol = self._policy_for(layer.name)
        if pol is not None and pol.error_bound is not None:
            # Rule-pinned absolute bound: recorded so reporting and the
            # controller's skip logic see one consistent value.
            self.error_bounds[layer.name] = pol.error_bound
            return pol.error_bound
        eb = self.error_bounds.get(layer.name)
        if eb is not None:
            return eb
        rel = (
            pol.initial_rel_eb
            if pol is not None and pol.initial_rel_eb is not None
            else self.initial_rel_eb
        )
        vrange = float(arr.max() - arr.min())
        eb = rel * vrange if vrange > 0 else rel
        self.error_bounds[layer.name] = eb
        return eb

    # -- BaseCompressionContext hooks --------------------------------------
    def _make_pack_job(self, layer: Layer, arr: np.ndarray) -> Callable[[], tuple]:
        # The bound and the (possibly per-rule) codec are resolved here,
        # on the submitting thread: first-pack bound assignment mutates
        # per-layer state and must happen in forward order regardless of
        # the engine.
        eb = self.resolve_error_bound(layer, arr)
        pol, codec = self._select_codec(layer.name, self.compressor)
        serialize = self._should_serialize(pol)
        # Per-layer cache keys let a codebook-caching codec amortize its
        # entropy setup across iterations: each conv layer packs once per
        # forward in a fixed order, so per-key cache decisions stay
        # deterministic even under the async engine's worker pool.
        key = layer.name if getattr(codec, "supports_cache_key", False) else None

        def job():
            if key is not None:
                ct = codec.compress(arr, error_bound=eb, cache_key=key)
            else:
                ct = codec.compress(arr, error_bound=eb)
            nz = float(np.count_nonzero(arr)) / arr.size
            return ct, _codec_dumps(ct) if serialize else None, nz

        return job

    def _decompress(self, ct, layer_name: str = "") -> np.ndarray:
        codec = self._layer_codec.get(layer_name, self.compressor)
        return codec.decompress(ct)

    def _observe_pack(self, handle: PackedActivation, ct, nz) -> None:
        handle.nonzero_ratio = nz
        self.observed_nonzero[handle.layer_name] = nz
        self.observed_ratio[handle.layer_name] = (
            handle.raw_nbytes / handle.stored_nbytes if handle.stored_nbytes else 0.0
        )

    def _postprocess(self, layer: Layer, handle: PackedActivation, out: np.ndarray):
        if layer.name in self.relu_recompute_layers:
            # Recompute the activation function (Section 4.4): negative
            # drift is erased by the ReLU; positive drift is bounded by
            # eb and true values <= eb quantize to the zero grid point,
            # so clamping the sub-eb band restores exact zeros.  Codecs
            # without a per-element bound (jpeg, lossless) only get the
            # ReLU itself — there is no eb band to clamp.
            np.maximum(out, 0, out=out)
            eb = getattr(handle.compressed, "error_bound", None)
            if eb is not None:
                out[out <= eb] = 0
        return out
