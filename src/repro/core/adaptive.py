"""Adaptive compression configuration (Sections 4.1-4.3).

Every ``W`` iterations (default 1000, the paper's "active factor") the
controller refreshes its view of the training status — per-layer loss
magnitude L_bar, activation sparsity R, and momentum magnitude — and
re-derives each convolutional layer's absolute error bound:

    sigma = sigma_fraction * M_average          (Eq. 8, gradient assessment)
    eb    = sigma / (a * L_rms * sqrt(M * R))   (Eq. 9, activation assessment)

with M the combined element count (batch x conv output positions) — see
:mod:`repro.core.error_model` for why the rms convention makes the
coefficient exact.

A short warm-up collects every iteration so compression starts from
measured statistics rather than guesses.

Under a :class:`~repro.core.policy_table.PolicyTable` the controller
drives bounds **per rule-group** instead of one global regime: layers
whose rule pins a fixed ``error_bound`` (``adaptive=False``) are left
alone entirely, and adaptive rules may override the global
``eb_min``/``eb_max`` clamps for their layers — so a "tight early
layers, loose late layers" policy holds even while Eqs. 8–9 keep
re-deriving the bounds inside each group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.activation_store import CompressingContext
from repro.core.error_model import THEORY_COEFFICIENT_A, error_bound_for_sigma
from repro.core.gradient_assessment import GradientAssessor

__all__ = ["AdaptiveConfig", "AdaptiveController"]


@dataclass
class AdaptiveConfig:
    """Knobs of the adaptive scheme, defaulting to the paper's choices."""

    W: int = 1000  # parameter-collection interval (Section 4.1)
    sigma_fraction: float = 0.01  # Eq. 8 budget (Figure 9 study)
    coefficient: float = THEORY_COEFFICIENT_A  # exact rms convention
    initial_rel_eb: float = 1e-3  # warm-up eb as fraction of value range
    warmup_iterations: int = 5  # collect every iteration at the start
    eb_min: float = 1e-10
    eb_max: float = 10.0
    min_nonzero_ratio: float = 1e-3  # guard against R -> 0 blow-up

    def __post_init__(self):
        if self.W < 1:
            raise ValueError(f"W must be >= 1, got {self.W}")
        if not 0 < self.sigma_fraction < 1:
            raise ValueError("sigma_fraction must be in (0, 1)")
        if self.eb_min <= 0 or self.eb_max <= self.eb_min:
            raise ValueError("need 0 < eb_min < eb_max")


class AdaptiveController:
    """Owns per-layer error bounds; consumes collected statistics."""

    def __init__(
        self,
        config: AdaptiveConfig,
        assessor: GradientAssessor,
        ctx: CompressingContext,
    ):
        self.config = config
        self.assessor = assessor
        self.ctx = ctx
        #: latest rms |dL/dout| per conv layer (the paper's L_bar in the
        #: exact rms convention)
        self.loss_scales: Dict[str, float] = {}
        #: latest combined element count per layer (batch x Ho x Wo)
        self.combined_elements: Dict[str, int] = {}
        self.updates = 0

    def should_collect(self, iteration: int) -> bool:
        """Collect semi-online parameters this iteration? (Section 4.1)"""
        if iteration < self.config.warmup_iterations:
            return True
        return iteration % self.config.W == 0

    def record_loss(self, layer_name: str, dout: np.ndarray) -> None:
        d = dout.astype(np.float64)
        self.loss_scales[layer_name] = float(np.sqrt((d * d).mean()))
        n, _, ho, wo = dout.shape
        self.combined_elements[layer_name] = int(n * ho * wo)

    def update_error_bounds(self, conv_params: Dict[str, "Parameter"]) -> Dict[str, float]:
        """Refresh every known layer's error bound from current statistics.

        Returns the new per-layer bounds (also installed into the
        compressing context for the next forward pass).
        """
        cfg = self.config
        new_bounds: Dict[str, float] = {}
        for name, lscale in self.loss_scales.items():
            if not self.ctx.is_adaptive(name):
                # Rule-pinned fixed bound: this layer belongs to a
                # non-adaptive policy group and keeps its configured eb.
                continue
            param = conv_params.get(name)
            sigma = self.assessor.sigma_budget(param)
            if sigma <= 0:
                # momentum not yet populated (first iterations)
                sigma = self.assessor.gradient_fallback_budget(param)
            if sigma <= 0 or lscale <= 0:
                continue  # keep current bound; no usable signal this round
            m = self.combined_elements.get(name, 1)
            r = max(self.ctx.observed_nonzero.get(name, 1.0), cfg.min_nonzero_ratio)
            eb = error_bound_for_sigma(
                sigma, lscale, m, nonzero_ratio=r, coefficient=cfg.coefficient
            )
            lo, hi = self._clamps_for(name)
            eb = float(np.clip(eb, lo, hi))
            new_bounds[name] = eb
            self.ctx.error_bounds[name] = eb
        self.updates += 1
        return new_bounds

    def _clamps_for(self, layer_name: str) -> "tuple[float, float]":
        """(eb_min, eb_max) for *layer_name*: the layer's policy rule may
        override the global clamps for its group."""
        cfg = self.config
        table = getattr(self.ctx, "policy_table", None)
        pol = table.resolve(layer_name) if table is not None else None
        if pol is None:
            return cfg.eb_min, cfg.eb_max
        lo = pol.eb_min if pol.eb_min is not None else cfg.eb_min
        hi = pol.eb_max if pol.eb_max is not None else cfg.eb_max
        if hi <= lo:
            raise ValueError(
                f"rule {pol.label!r}: eb clamps invalid for layer {layer_name!r} "
                f"(eb_min={lo} >= eb_max={hi})"
            )
        return lo, hi
