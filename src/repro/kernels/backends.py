"""Kernel backend registry: ``get_backend("numpy" | "numba" | "auto")``.

The five hot kernels of the SZ pipeline — ``quantize_encode``,
``quantize_decode``, ``lorenzo_predict``, ``huffman_pack_words``,
``huffman_unpack_window`` — are exposed behind a
:class:`KernelBackend` so the same codec contract runs on the NumPy
reference today and on compiled implementations when present.

Selection semantics:

* ``"numpy"`` — the reference backend, always available.
* ``"numba"`` — the ``@njit(cache=True)``-compiled loops; raises
  :class:`ValueError` when numba is unavailable or fails its probe.
* ``"auto"`` — probes numba once per process: import, compile, and a
  one-shot **warmup** that runs all five kernels on tiny inputs and
  verifies bit-identity against the reference (so JIT compilation never
  lands inside a profiled stage, and a miscompiled kernel can never be
  selected).  Any probe failure degrades to numpy — counted in
  :func:`kernel_stats`, never raised, the same degradation discipline
  as ``SharedCodebookCache.segment_errors``.

A selected numba backend additionally degrades *per call*: a kernel
that raises at runtime falls back to the reference implementation for
that call (``runtime_fallbacks`` in :func:`kernel_stats`).
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "KernelBackend",
    "KERNEL_BACKENDS",
    "get_backend",
    "available_backends",
    "kernel_stats",
]

#: every accepted ``kernel_backend`` spelling (config validation checks
#: membership only, so configs round-trip on numba-less hosts too)
KERNEL_BACKENDS = ("numpy", "numba", "auto")


@dataclass(frozen=True)
class KernelBackend:
    """Five hot-kernel callables plus the name they were selected as."""

    name: str
    quantize_encode: Callable = field(repr=False)
    quantize_decode: Callable = field(repr=False)
    lorenzo_predict: Callable = field(repr=False)
    huffman_pack_words: Callable = field(repr=False)
    huffman_unpack_window: Callable = field(repr=False)


def _numpy_backend() -> KernelBackend:
    from repro.kernels import numpy_backend as nb

    return KernelBackend(
        name="numpy",
        quantize_encode=nb._numpy_quantize_encode,
        quantize_decode=nb._numpy_quantize_decode,
        lorenzo_predict=nb._numpy_lorenzo_predict,
        huffman_pack_words=nb._numpy_huffman_pack_words,
        huffman_unpack_window=nb._numpy_huffman_unpack_window,
    )


_NUMPY = _numpy_backend()

_lock = threading.Lock()
#: probe state: None = not probed yet; (backend | None, error | None)
_probe: Optional[tuple] = None
_counters = {"auto_fallbacks": 0, "runtime_fallbacks": 0, "warmups": 0}


def _note_runtime_fallback(kernel: str) -> None:
    with _lock:
        _counters["runtime_fallbacks"] += 1


def warmup_backend(backend: KernelBackend, reference: KernelBackend = _NUMPY) -> None:
    """One-shot warmup: run all five kernels on tiny inputs and verify
    bit-identity against *reference*.  Raises on any mismatch."""
    from repro.utils.scratch import ScratchPool

    rng = np.random.default_rng(0)
    x = (rng.standard_normal((2, 3, 5, 5)) * 3).astype(np.float32)
    x.reshape(-1)[::7] = 0.0
    eb, radius, ndim = 1e-2, 8, 2  # tiny radius => real outliers in play

    results = []
    for b in (backend, reference):
        pool = ScratchPool()
        with ExitStack() as stack:
            codes, outliers, flat = b.quantize_encode(x, eb, radius, ndim, pool, stack)
            codes, outliers, flat = codes.copy(), outliers.copy(), flat.copy()
        q = b.quantize_decode(codes, outliers, radius, x.shape, ndim)
        pred = b.lorenzo_predict(q.astype(np.int64), ndim)
        lengths = np.zeros(2 * radius, dtype=np.uint8)
        lengths[: 2 * radius] = 4  # fixed-length book covers every code
        cw = np.arange(2 * radius, dtype=np.uint32)
        payload, total_bits, chunk_offsets = b.huffman_pack_words(codes, lengths, cw, 16)
        L = 4
        tsym = np.zeros(1 << L, dtype=np.uint32)
        tlen = np.full(1 << L, 4, dtype=np.int64)
        tsym[:] = np.arange(1 << L)
        syms = b.huffman_unpack_window(
            payload, total_bits, int(codes.size), tsym, tlen, L, chunk_offsets, 16
        )
        results.append((codes, outliers, flat, q, pred, payload, total_bits, syms))

    got, want = results
    for i, (g, w) in enumerate(zip(got, want)):
        if isinstance(g, bytes):
            same = g == w
        elif isinstance(g, int):
            same = g == w
        else:
            same = np.array_equal(np.asarray(g), np.asarray(w))
        if not same:
            raise ValueError(f"backend {backend.name!r} warmup mismatch (check {i})")
    with _lock:
        _counters["warmups"] += 1


def _probe_numba() -> tuple:
    """Import + compile + warm the numba backend once per process.

    Returns ``(backend | None, error_message | None)``; never raises.
    """
    global _probe
    with _lock:
        if _probe is not None:
            return _probe
    # Compile outside the lock (can take seconds); a racing second probe
    # just does redundant work and the first stored result wins.
    try:
        import numba  # noqa: F401 -- availability probe

        from repro.kernels import numba_backend

        loops = numba_backend.compile_kernels(numba.njit(cache=True))
        fns = numba_backend.make_kernel_functions(loops, _note_runtime_fallback)
        backend = KernelBackend(name="numba", **fns)
        warmup_backend(backend)
        result = (backend, None)
    except Exception as exc:  # degradation discipline: counted, never raised
        result = (None, f"{type(exc).__name__}: {exc}")
    with _lock:
        if _probe is None:
            _probe = result
        return _probe


def get_backend(name: str = "numpy") -> KernelBackend:
    """Resolve a backend by name (see module docstring for semantics)."""
    if name == "numpy":
        return _NUMPY
    if name == "numba":
        backend, error = _probe_numba()
        if backend is None:
            raise ValueError(
                f"kernel backend 'numba' is unavailable ({error}); "
                f"install numba or use 'auto'/'numpy'"
            )
        return backend
    if name == "auto":
        backend, _ = _probe_numba()
        if backend is None:
            with _lock:
                _counters["auto_fallbacks"] += 1
            return _NUMPY
        return backend
    raise ValueError(
        f"kernel backend must be one of {KERNEL_BACKENDS}, got {name!r}"
    )


def available_backends() -> tuple:
    """Names of the backends that actually resolve on this host."""
    backend, _ = _probe_numba()
    return ("numpy", "numba") if backend is not None else ("numpy",)


def kernel_stats() -> dict:
    """Selection/degradation counters (surfaced in ``Session.kernel_stats``)."""
    with _lock:
        probed = _probe is not None
        backend, error = _probe if probed else (None, None)
        return {
            "numba_probed": probed,
            "numba_available": backend is not None,
            "probe_error": error,
            "auto_selects": "numba" if backend is not None else "numpy",
            **dict(_counters),
        }


def _reset_probe_for_tests() -> None:
    """Forget the probe result and zero the counters (test hook)."""
    global _probe
    with _lock:
        _probe = None
        for k in _counters:
            _counters[k] = 0
