"""Pluggable kernel backends for the SZ pipeline's hot inner loops.

``get_backend("numpy" | "numba" | "auto")`` returns a
:class:`~repro.kernels.backends.KernelBackend` exposing the five hot
kernels (quantize_encode / quantize_decode / lorenzo_predict /
huffman_pack_words / huffman_unpack_window).  The NumPy reference
implementation always resolves; ``"numba"`` compiles the fused loops
with ``@njit(cache=True)`` when numba is installed; ``"auto"`` probes
once, warms up off the profiled path, and degrades to numpy (counted,
never raised).  This package sits *below* the codec layer: it imports
numpy and ``repro.utils`` only.
"""

from repro.kernels.backends import (
    KERNEL_BACKENDS,
    KernelBackend,
    available_backends,
    get_backend,
    kernel_stats,
)

__all__ = [
    "KERNEL_BACKENDS",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "kernel_stats",
]
