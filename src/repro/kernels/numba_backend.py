"""Compiled (Numba) implementations of the five hot kernels.

The inner loops live here as *plain Python functions* written in the
njit-compilable subset — :func:`compile_kernels` wraps each with
``numba.njit(cache=True)`` at probe time.  Keeping them importable
without numba means:

* the numpy-only containers (and CI legs) can still bit-identity-test
  the loop *algorithms* against the reference backend by running them
  uncompiled (:func:`python_loop_backend`), and
* probing never pays an import cost when numba is absent — the
  ``import numba`` happens in :mod:`repro.kernels.backends`, not here.

Compared to the NumPy reference the loops fuse the quantize+predict
front half into one pass over the input (the grid round lands directly
in the residual buffer, the per-axis differences run in place on it,
and the code mapping branches per element — no float64 staging array,
no mask/shifted temporaries) and the Huffman encoder packs branch-per
symbol through a 24-bit accumulator instead of the bincount-merge
temporaries.  Bit-identity with the reference backend is a contract:
it is checked at warmup and enforced by the backend-parametrized codec
contract suite.
"""

from __future__ import annotations

import numpy as np

from repro.utils import profiler

from repro.kernels.numpy_backend import (
    _numpy_huffman_pack_words,
    _numpy_huffman_unpack_window,
    _numpy_lorenzo_predict,
    _numpy_quantize_decode,
    _numpy_quantize_encode,
    codes_dtype_for_radius,
    validate_lorenzo,
)

__all__ = ["LOOP_NAMES", "compile_kernels", "make_kernel_functions", "python_loops"]


# ---------------------------------------------------------------------------
# njit-compilable inner loops (plain Python; numba specializes per dtype)
# ---------------------------------------------------------------------------


def _quantize_grid(x, denom, out):
    """``out[i] = int64(rint(float64(x[i]) / denom))`` — the float64
    cast keeps float32 input on the exact arithmetic the reference
    backend uses, so the two quantize bit-identically."""
    for i in range(x.size):
        out[i] = np.int64(np.rint(np.float64(x[i]) / denom))


def _diff_inplace(a):
    """In-place backward finite difference along axis 1 of an
    ``(outer, n, inner)`` view — equals the reference's out-of-place
    forward diff along that axis."""
    for o in range(a.shape[0]):
        for i in range(a.shape[1] - 1, 0, -1):
            for k in range(a.shape[2]):
                a[o, i, k] -= a[o, i - 1, k]


def _cumsum_inplace(a):
    """In-place cumulative sum along axis 1 of an ``(outer, n, inner)``
    view (the inverse of :func:`_diff_inplace`)."""
    for o in range(a.shape[0]):
        for i in range(1, a.shape[1]):
            for k in range(a.shape[2]):
                a[o, i, k] += a[o, i - 1, k]


def _count_outliers(flat, radius):
    n = 0
    two_r = 2 * radius
    for i in range(flat.size):
        s = flat[i] + radius
        if s <= 0 or s >= two_r:
            n += 1
    return n


def _fill_codes(flat, radius, codes, outliers):
    """Branch-per-element code mapping: inliers get ``delta + radius``,
    outliers get the marker 0 and land in *outliers* in positional
    order (exactly the reference's mask semantics)."""
    j = 0
    two_r = 2 * radius
    for i in range(flat.size):
        s = flat[i] + radius
        if s > 0 and s < two_r:
            codes[i] = s
        else:
            codes[i] = 0
            outliers[j] = flat[i]
            j += 1
    return j


def _decode_codes(codes, outliers, radius, out):
    """Invert :func:`_fill_codes`; returns the marker count so the
    wrapper can raise the bookkeeping-mismatch contract error."""
    markers = 0
    n_avail = outliers.size
    for i in range(codes.size):
        c = np.int64(codes[i])
        if c == 0:
            if markers < n_avail:
                out[i] = outliers[markers]
            else:
                out[i] = 0  # discarded: the wrapper raises on mismatch
            markers += 1
        else:
            out[i] = c - radius
    return markers


def _pack_pass1(symbols, lengths):
    """Total bit count + index of the first uncovered symbol (-1 if all
    covered) — sizes the output exactly, like the reference's pass 1."""
    total = 0
    first_bad = -1
    for i in range(symbols.size):
        l = np.int64(lengths[symbols[i]])
        if l == 0 and first_bad < 0:
            first_bad = i
        total += l
    return total, first_bad


def _pack_pass2(symbols, lengths, codes64, chunk_size, out8, chunk_offsets):
    """Branch-per-symbol big-endian bit packer through a small
    accumulator: at most 7 pending bits + one <=16-bit codeword live in
    ``acc``, bytes stream out MSB-first — byte-identical to the
    reference's word-merge layout, with zero O(n) temporaries."""
    acc = 0
    nbits = 0
    bitpos = 0
    byte_i = 0
    for i in range(symbols.size):
        if chunk_size > 0 and i % chunk_size == 0:
            chunk_offsets[i // chunk_size] = bitpos
        s = symbols[i]
        l = np.int64(lengths[s])
        acc = (acc << l) | codes64[s]
        nbits += l
        bitpos += l
        while nbits >= 8:
            nbits -= 8
            out8[byte_i] = (acc >> nbits) & 0xFF
            byte_i += 1
        # keep only the pending low bits: acc stays < 2^8 between
        # symbols, so the int64 accumulator can never overflow
        acc &= (1 << nbits) - 1
    if nbits > 0:
        out8[byte_i] = (acc << (8 - nbits)) & 0xFF
    return byte_i


def _unpack_loop(buf, offsets, chunk_size, count, total_bits, tsym, tlen, L, out):
    """Per-chunk sequential window decode: gather 3 bytes around the
    bit cursor, index the dense tables, advance.  Chunks are
    independent; positions clamp to ``total_bits`` exactly like the
    reference (the 4 guard bytes make the clamped gather safe)."""
    mask = (1 << L) - 1
    for j in range(offsets.size):
        pos = offsets[j]
        base = j * chunk_size
        n_here = chunk_size
        if base + n_here > count:
            n_here = count - base
        for i in range(n_here):
            byte = pos >> 3
            window = (
                (np.int64(buf[byte]) << 16)
                | (np.int64(buf[byte + 1]) << 8)
                | np.int64(buf[byte + 2])
            )
            p = (window >> (24 - (pos & 7) - L)) & mask
            out[base + i] = tsym[p]
            pos = pos + tlen[p]
            if pos > total_bits:
                pos = total_bits


LOOP_NAMES = (
    "quantize_grid",
    "diff_inplace",
    "cumsum_inplace",
    "count_outliers",
    "fill_codes",
    "decode_codes",
    "pack_pass1",
    "pack_pass2",
    "unpack_loop",
)

_LOOPS = {
    "quantize_grid": _quantize_grid,
    "diff_inplace": _diff_inplace,
    "cumsum_inplace": _cumsum_inplace,
    "count_outliers": _count_outliers,
    "fill_codes": _fill_codes,
    "decode_codes": _decode_codes,
    "pack_pass1": _pack_pass1,
    "pack_pass2": _pack_pass2,
    "unpack_loop": _unpack_loop,
}


def python_loops():
    """The uncompiled loops — the numba *algorithms* runnable anywhere
    (slowly), so numpy-only environments can bit-identity-test them."""
    return dict(_LOOPS)


def compile_kernels(jit):
    """Wrap every inner loop with *jit* (``numba.njit(cache=True)``)."""
    return {name: jit(fn) for name, fn in _LOOPS.items()}


# ---------------------------------------------------------------------------
# The five-kernel contract over the compiled loops
# ---------------------------------------------------------------------------


def _axis_views(flat, shape, ndim):
    """``(outer, n, inner)`` int64 views of *flat* for each predicted
    axis, in the same per-axis order the reference composes them."""
    views = []
    nd = len(shape)
    for axis in range(nd - ndim, nd):
        outer = int(np.prod(shape[:axis])) if axis else 1
        n = int(shape[axis])
        inner = int(np.prod(shape[axis + 1 :])) if axis + 1 < nd else 1
        views.append(flat.reshape(outer, n, inner))
    return views


def make_kernel_functions(loops, on_fallback):
    """The five backend callables over a *loops* dict (compiled or not).

    Any exception out of a compiled loop degrades to the reference
    NumPy implementation — counted via *on_fallback*, never raised
    (contract errors are raised by the wrappers *before* the compiled
    sections, so they surface identically on both backends).
    """

    def quantize_encode(x, error_bound, radius, ndim, pool, stack):
        if error_bound <= 0:
            raise ValueError(f"error bound must be positive, got {error_bound}")
        if radius < 2:
            raise ValueError(f"radius must be >= 2, got {radius}")
        try:
            xc = np.ascontiguousarray(x)
            delta = stack.enter_context(pool.take(xc.shape, np.int64))
            flat = delta.reshape(-1)
            with profiler.stage("quantize"):
                loops["quantize_grid"](xc.reshape(-1), 2.0 * float(error_bound), flat)
            with profiler.stage("predict"):
                for view in _axis_views(flat, xc.shape, min(ndim, xc.ndim)):
                    loops["diff_inplace"](view)
                codes = stack.enter_context(
                    pool.take(flat.shape, codes_dtype_for_radius(radius))
                )
                n_out = loops["count_outliers"](flat, radius)
                outliers = np.empty(int(n_out), dtype=np.int64)
                loops["fill_codes"](flat, radius, codes, outliers)
            return codes, outliers, flat
        except Exception:
            on_fallback("quantize_encode")
            return _numpy_quantize_encode(x, error_bound, radius, ndim, pool, stack)

    def quantize_decode(codes, outliers, radius, shape, ndim):
        markers = None
        try:
            flat_codes = np.ascontiguousarray(codes).reshape(-1)
            out64 = np.asarray(outliers, dtype=np.int64)
            q = np.empty(flat_codes.size, dtype=np.int64)
            markers = int(loops["decode_codes"](flat_codes, out64, radius, q))
            if markers == outliers.size:
                for view in _axis_views(q, tuple(shape), min(ndim, len(shape))):
                    loops["cumsum_inplace"](view)
                return q.reshape(shape)
        except Exception:
            on_fallback("quantize_decode")
            return _numpy_quantize_decode(codes, outliers, radius, shape, ndim)
        raise ValueError(
            f"outlier bookkeeping mismatch: {markers} markers vs "
            f"{outliers.size} stored values"
        )

    def lorenzo_predict(q, ndim, out=None, work=None):
        validate_lorenzo(q, ndim)
        if out is not None and ndim >= 2 and work is None:
            raise ValueError("lorenzo_encode with out= needs a work buffer for ndim >= 2")
        try:
            if out is None:
                res = np.ascontiguousarray(q).copy()
            else:
                np.copyto(out, q)
                res = out
            for view in _axis_views(res.reshape(-1), q.shape, ndim):
                loops["diff_inplace"](view)
            return res
        except Exception:
            on_fallback("lorenzo_predict")
            return _numpy_lorenzo_predict(q, ndim, out=out, work=work)

    def huffman_pack_words(symbols, lengths, codes, chunk_size):
        first_bad = None
        try:
            sym = np.ascontiguousarray(symbols).reshape(-1)
            total_bits, first_bad = loops["pack_pass1"](sym, lengths)
            total_bits, first_bad = int(total_bits), int(first_bad)
            if first_bad < 0:
                n_chunks = -(-sym.size // chunk_size) if chunk_size else 0
                out8 = np.zeros((total_bits + 7) >> 3, dtype=np.uint8)
                chunk_offsets = np.zeros(n_chunks, dtype=np.int64)
                loops["pack_pass2"](
                    sym, lengths, codes.astype(np.int64), chunk_size, out8, chunk_offsets
                )
                return out8.tobytes(), total_bits, chunk_offsets
        except Exception:
            on_fallback("huffman_pack_words")
            return _numpy_huffman_pack_words(symbols, lengths, codes, chunk_size)
        raise ValueError(
            f"symbol {int(np.ascontiguousarray(symbols).reshape(-1)[first_bad])} "
            f"has no codeword in this codebook"
        )

    def huffman_unpack_window(payload, total_bits, count, tsym, tlen, L, chunk_offsets, chunk_size):
        try:
            buf = np.frombuffer(payload + b"\x00\x00\x00\x00", dtype=np.uint8)
            out = np.empty(count, dtype=np.uint32)
            loops["unpack_loop"](
                buf,
                np.ascontiguousarray(chunk_offsets, dtype=np.int64),
                chunk_size,
                count,
                total_bits,
                tsym,
                tlen,
                L,
                out,
            )
            return out
        except Exception:
            on_fallback("huffman_unpack_window")
            return _numpy_huffman_unpack_window(
                payload, total_bits, count, tsym, tlen, L, chunk_offsets, chunk_size
            )

    return {
        "quantize_encode": quantize_encode,
        "quantize_decode": quantize_decode,
        "lorenzo_predict": lorenzo_predict,
        "huffman_pack_words": huffman_pack_words,
        "huffman_unpack_window": huffman_unpack_window,
    }
