"""Reference NumPy implementations of the five hot kernels.

This module is the single source of truth for the inner loops of the
SZ pipeline's hot path — extracted, behavior-identical, from
``compression/szlike/quantizer.py`` / ``lorenzo.py`` / ``huffman.py``
(which now delegate here).  Two layers live in this file:

* **Building blocks** (public names): ``prequantize_grid_into``,
  ``bounded_codes_into``, ``apply_outliers``, ``diff_axes`` /
  ``cumsum_axes``, ``pack_words``, ``unpack_window``.  The szlike
  modules call these to keep their public reference API
  (``prequantize_into``, ``lorenzo_encode``, ...) working unchanged.
* **The backend contract** (``_numpy_*`` names): the five kernels every
  :class:`~repro.kernels.backends.KernelBackend` exposes —
  ``quantize_encode`` (fused quantize→predict→codes over pooled
  scratch), ``quantize_decode`` (codes+outliers→grid indices),
  ``lorenzo_predict``, ``huffman_pack_words``,
  ``huffman_unpack_window``.  Code under ``compression/szlike/`` must
  reach these via :func:`repro.kernels.get_backend` — never by their
  private names (reprolint rule BKD001) — so a configured backend is
  never silently bypassed.

This module imports only numpy and the stage profiler: the kernels
layer sits *below* the codec layer and must never import from it.
"""

from __future__ import annotations

import numpy as np

from repro.utils import profiler

__all__ = [
    "prequantize_grid_into",
    "bounded_codes_into",
    "apply_outliers",
    "validate_lorenzo",
    "diff_axes",
    "diff_axes_alloc",
    "cumsum_axes",
    "pack_words",
    "unpack_window",
    "codes_dtype_for_radius",
]

#: symbols per encode block for :func:`pack_words` (a multiple of the
#: 4096-symbol decode chunk so chunk-offset sampling never straddles a
#: block boundary); bounds the per-block temporaries regardless of size
ENCODE_BLOCK = 1 << 14


def codes_dtype_for_radius(radius: int) -> np.dtype:
    """The narrowest unsigned dtype holding every code in (0, 2*radius)."""
    return np.dtype(np.uint16 if 2 * radius <= np.iinfo(np.uint16).max else np.uint32)


# ---------------------------------------------------------------------------
# Quantize / codes building blocks (from szlike/quantizer.py)
# ---------------------------------------------------------------------------


def prequantize_grid_into(x: np.ndarray, error_bound: float, out: np.ndarray, work: np.ndarray) -> np.ndarray:
    """``round(x / 2eb)`` onto int64 *out* via the float64 staging *work*.

    dtype=float64 forces the division loop into double precision even
    for float32 input — the same arithmetic the allocating
    ``prequantize`` performs, so the two paths quantize bit-identically
    (rint keeps ties-to-even like cuSZ's round).
    """
    if error_bound <= 0:
        raise ValueError(f"error bound must be positive, got {error_bound}")
    np.divide(x, 2.0 * error_bound, out=work, dtype=np.float64)
    np.rint(work, out=work)
    np.copyto(out, work, casting="unsafe")  # values are integral floats
    return out


def bounded_codes_into(
    delta: np.ndarray,
    radius: int,
    *,
    shifted: np.ndarray,
    mask: np.ndarray,
    work_mask: np.ndarray,
    codes: np.ndarray,
):
    """Map residuals to codes ``delta + radius`` in ``(0, 2*radius)``.

    Residuals outside the code range escape into the returned int64
    outlier array (marker code 0); all large buffers are caller-owned.
    Returns ``(codes, outliers)``.
    """
    if radius < 2:
        raise ValueError(f"radius must be >= 2, got {radius}")
    flat = delta.reshape(-1)
    np.add(flat, radius, out=shifted)
    np.greater(shifted, 0, out=mask)
    np.less(shifted, 2 * radius, out=work_mask)
    np.logical_and(mask, work_mask, out=mask)
    codes[...] = 0
    np.copyto(codes, shifted, where=mask, casting="unsafe")
    np.logical_not(mask, out=work_mask)
    outliers = flat[work_mask].astype(np.int64)
    return codes, outliers


def apply_outliers(codes: np.ndarray, outliers: np.ndarray, radius: int) -> np.ndarray:
    """Invert :func:`bounded_codes_into`: flat int64 residuals from codes.

    Marker positions (code 0) take their residual from *outliers* in
    order of appearance; a marker/outlier count mismatch is corruption.
    """
    delta = codes.reshape(-1).astype(np.int64) - radius
    mask = codes.reshape(-1) == 0
    n_out = int(mask.sum())
    if n_out != outliers.size:
        raise ValueError(
            f"outlier bookkeeping mismatch: {n_out} markers vs {outliers.size} stored values"
        )
    if n_out:
        delta[mask] = outliers
    return delta


# ---------------------------------------------------------------------------
# Lorenzo building blocks (from szlike/lorenzo.py)
# ---------------------------------------------------------------------------


def validate_lorenzo(arr: np.ndarray, ndim: int) -> int:
    if ndim < 1 or ndim > 3:
        raise ValueError(f"Lorenzo prediction supports 1-3 dims, got {ndim}")
    if arr.ndim < ndim:
        raise ValueError(
            f"array with {arr.ndim} axes cannot be Lorenzo-predicted over {ndim} axes"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("Lorenzo transform requires integer (pre-quantized) input")
    return ndim


def _diff_into(src: np.ndarray, axis: int, dst: np.ndarray) -> None:
    """Finite difference along *axis* from *src* into *dst* (boundary
    element copied).  *dst* must not alias *src*."""
    hi = [slice(None)] * src.ndim
    lo = [slice(None)] * src.ndim
    first = [slice(None)] * src.ndim
    hi[axis] = slice(1, None)
    lo[axis] = slice(None, -1)
    first[axis] = slice(0, 1)
    np.subtract(src[tuple(hi)], src[tuple(lo)], out=dst[tuple(hi)])
    dst[tuple(first)] = src[tuple(first)]


def diff_axes(q: np.ndarray, ndim: int, out: np.ndarray, work: np.ndarray) -> np.ndarray:
    """Per-axis finite differences ping-ponging between *out* and *work*
    (*work* may be *q* itself).  Returns whichever buffer holds the
    final residuals."""
    src, dst = q, out
    for axis in range(q.ndim - ndim, q.ndim):
        _diff_into(src, axis, dst)
        src, dst = dst, (work if dst is out else out)
    return src


def diff_axes_alloc(q: np.ndarray, ndim: int) -> np.ndarray:
    """Allocating form of :func:`diff_axes` (one ``np.diff`` per axis)."""
    res = q
    for axis in range(q.ndim - ndim, q.ndim):
        res = np.diff(res, axis=axis, prepend=np.zeros_like(res.take([0], axis=axis)))
    return res


def cumsum_axes(delta: np.ndarray, ndim: int) -> np.ndarray:
    """Invert :func:`diff_axes` (cumulative sums along each axis)."""
    out = delta
    for axis in range(delta.ndim - ndim, delta.ndim):
        out = np.cumsum(out, axis=axis, dtype=delta.dtype)
    return out


# ---------------------------------------------------------------------------
# Huffman building blocks (from szlike/huffman.py)
# ---------------------------------------------------------------------------


def pack_words(symbols: np.ndarray, lengths: np.ndarray, codes: np.ndarray, chunk_size: int):
    """Word-packed blocked encoder (the low-allocation hot path).

    Every codeword is <= 16 bits, so it spans at most two adjacent
    big-endian 16-bit output words.  Per block: shift each codeword into
    a 32-bit window at its absolute bit position, split into (high word,
    low word) halves, and merge all contributions per word with
    ``bincount`` — codewords occupy disjoint bits, so integer addition
    *is* bitwise OR (and the float64 weight sums stay exact: each word's
    total is < 2^16).

    Two passes over the symbol stream (a cheap per-block length sum
    sizes the output exactly), O(block) temporaries, and one
    output-sized uint16 word array: peak scratch is ~1x the packed
    payload plus a constant, versus the bit-plane encoder's 8x.

    Returns ``(payload bytes, total_bits, chunk_offsets int64)``.
    """
    codes64 = codes.astype(np.int64)
    n = symbols.size
    block = ENCODE_BLOCK if not chunk_size else max(
        chunk_size, (ENCODE_BLOCK // chunk_size) * chunk_size
    )

    # Pass 1: per-block bit totals -> exact output size, no O(n) scratch.
    total_bits = 0
    for a in range(0, n, block):
        lens = lengths[symbols[a : a + block]]
        if not lens.all():
            sl = symbols[a : a + block]
            bad = int(sl[lens == 0][0])
            raise ValueError(f"symbol {bad} has no codeword in this codebook")
        total_bits += int(lens.sum(dtype=np.int64))

    n_words = (total_bits + 15) >> 4
    # The word array doubles as the output byte buffer: a uint8 array
    # viewed as big-endian uint16 for the merge writes, sliced to the
    # exact payload length at the end — no byteswap copy, no trim copy.
    out8 = np.zeros(2 * (n_words + 1), dtype=np.uint8)  # +1 word: lo spill
    words = out8.view(">u2")
    chunk_parts = []
    base_bits = 0
    for a in range(0, n, block):
        s = symbols[a : a + block]
        lens = lengths[s].astype(np.int64)
        off = np.empty(s.size, dtype=np.int64)
        off[0] = base_bits
        np.cumsum(lens[:-1], out=off[1:])
        off[1:] += base_bits
        block_bits = int(off[-1] - base_bits + lens[-1])
        if chunk_size:
            # block is a multiple of chunk_size, so every chunk start
            # falls on a block-local index multiple of chunk_size
            chunk_parts.append(off[::chunk_size].copy())
        w = off >> 4
        w0 = int(w[0])
        # 32-bit window: bit r = off & 15 within word w, so the codeword
        # sits at shift (32 - r - len); top half lands in word w, bottom
        # half in word w + 1.
        val32 = codes64[s] << (32 - (off & 15) - lens)
        w -= w0
        n_local = int(w[-1]) + 2
        acc = np.bincount(w, weights=val32 >> 16, minlength=n_local)
        lo = np.bincount(w, weights=val32 & 0xFFFF, minlength=n_local)
        acc[1:] += lo[:-1]
        words[w0 : w0 + n_local] |= acc.astype(">u2")
        base_bits += block_bits

    payload = out8[: (total_bits + 7) >> 3].tobytes()
    if chunk_parts:
        chunk_offsets = np.concatenate(chunk_parts) if len(chunk_parts) > 1 else chunk_parts[0]
    else:
        chunk_offsets = np.zeros(0, dtype=np.int64)
    return payload, total_bits, chunk_offsets


def unpack_window(
    payload: bytes,
    total_bits: int,
    count: int,
    tsym: np.ndarray,
    tlen: np.ndarray,
    L: int,
    chunk_offsets: np.ndarray,
    chunk_size: int,
) -> np.ndarray:
    """Data-parallel chunked decode reading L-bit windows in place.

    All chunks advance one symbol per vectorized step; the current
    codeword's window is gathered directly from the packed payload
    (three bytes cover any 16-bit codeword at any bit phase), so the
    only allocations are the padded payload copy, the output array, and
    O(#chunks) per-step temporaries.  The caller validated the chunk
    metadata and built the dense ``(tsym, tlen)`` tables.
    """
    n_chunks = chunk_offsets.size
    # 4 guard bytes: a clamped position may gather up to 3 bytes past the
    # last payload bit's byte.
    buf = np.frombuffer(payload + b"\x00\x00\x00\x00", dtype=np.uint8)
    out = np.empty(n_chunks * chunk_size, dtype=np.uint32)
    pos = chunk_offsets.astype(np.int64).copy()
    slot = np.arange(n_chunks, dtype=np.int64) * chunk_size
    mask = (1 << L) - 1
    for i in range(chunk_size):
        byte = pos >> 3
        window = (
            (buf[byte].astype(np.int64) << 16)
            | (buf[byte + 1].astype(np.int64) << 8)
            | buf[byte + 2]
        )
        p = (window >> (24 - (pos & 7) - L)) & mask
        out[slot + i] = tsym[p]
        pos += tlen[p]
        np.minimum(pos, total_bits, out=pos)
    return out[:count]


# ---------------------------------------------------------------------------
# The five-kernel backend contract (reference implementations)
# ---------------------------------------------------------------------------


def _numpy_quantize_encode(x, error_bound, radius, ndim, pool, stack):
    """Quantize → Lorenzo-predict → bounded codes over pooled scratch.

    Returns ``(codes, outliers, flat_delta)``; *codes* and *flat_delta*
    reference pooled memory owned by *stack*, so they are valid only
    until the stack closes.  Stage attribution matches the historical
    pipeline: "quantize" covers the grid round, "predict" the residual
    transform and code mapping.
    """
    take = pool.take
    with profiler.stage("quantize"):
        work = stack.enter_context(take(x.shape, np.float64))
        qa = stack.enter_context(take(x.shape, np.int64))
        prequantize_grid_into(x, error_bound, out=qa, work=work)
    with profiler.stage("predict"):
        qb = stack.enter_context(take(x.shape, np.int64))
        # Ping-pong between the two int64 buffers; qa's contents are
        # disposable once the first difference lands in qb.
        delta = diff_axes(qa, ndim, out=qb, work=qa)
        flat = delta.reshape(-1)
        other = (qa if delta is qb else qb).reshape(-1)
        mask = stack.enter_context(take(flat.shape, bool))
        work_mask = stack.enter_context(take(flat.shape, bool))
        codes = stack.enter_context(take(flat.shape, codes_dtype_for_radius(radius)))
        codes, outliers = bounded_codes_into(
            delta, radius, shifted=other, mask=mask, work_mask=work_mask, codes=codes
        )
    return codes, outliers, flat


def _numpy_quantize_decode(codes, outliers, radius, shape, ndim):
    """Invert the encode front half: codes + outliers → int64 grid indices."""
    delta = apply_outliers(codes, outliers, radius).reshape(shape)
    validate_lorenzo(delta, ndim)
    return cumsum_axes(delta, ndim)


def _numpy_lorenzo_predict(q, ndim, out=None, work=None):
    """Residuals of the Lorenzo predictor over the last *ndim* axes."""
    validate_lorenzo(q, ndim)
    if out is None:
        return diff_axes_alloc(q, ndim)
    if ndim >= 2 and work is None:
        raise ValueError("lorenzo_encode with out= needs a work buffer for ndim >= 2")
    return diff_axes(q, ndim, out=out, work=work)


def _numpy_huffman_pack_words(symbols, lengths, codes, chunk_size):
    return pack_words(symbols, lengths, codes, chunk_size)


def _numpy_huffman_unpack_window(payload, total_bits, count, tsym, tlen, L, chunk_offsets, chunk_size):
    return unpack_window(payload, total_bits, count, tsym, tlen, L, chunk_offsets, chunk_size)
