"""repro — reproduction of "A Novel Memory-Efficient Deep Learning Training
Framework via Error-Bounded Lossy Compression" (Jin et al., PPoPP 2021).

Subpackages
-----------
``repro.api``
    The declarative front door: :class:`~repro.api.config.SessionConfig`
    (serializable codec / per-layer policy-rule / storage / engine /
    adaptive / profiler / optimizer specs) and
    :func:`~repro.api.session.build_session`, which composes the whole
    stack into one :class:`~repro.api.session.Session`.
``repro.compression``
    SZ/cuSZ-style error-bounded lossy compressor (Lorenzo + dual
    quantization + Huffman) plus JPEG-like and lossless baselines.
``repro.nn``
    From-scratch NumPy DNN training substrate with a pluggable
    saved-tensor context (the compression interception point).
``repro.models``
    AlexNet / VGG-16 / ResNet-18 / ResNet-50: full-scale specs for
    memory accounting and scaled trainable variants.
``repro.core``
    The paper's contribution: error-propagation model (Eqs. 6-9),
    gradient assessment, adaptive error-bound controller, and the
    :class:`~repro.core.framework.CompressedTraining` session.
``repro.simulator``
    Roofline GPU cost model, interconnect models, and the throughput
    simulator behind Figure 11 and the overhead analysis.
``repro.analysis``
    Error-injection methodology and distribution diagnostics
    (Figures 3, 6, 8, 9).

Quick start::

    from repro.api import SessionConfig, build_session
    from repro.nn import SyntheticImageDataset, batches
    from repro.models import build_scaled_model

    net = build_scaled_model("alexnet", num_classes=8)
    ds = SyntheticImageDataset(num_classes=8)
    with build_session(net, SessionConfig()) as session:
        session.train(batches(ds, batch_size=32, num_batches=100))
        print(session.tracker.overall_ratio)  # activation memory reduction

(The imperative ``Trainer`` + ``CompressedTraining`` pair still works —
see :mod:`repro.core.framework` — and ``SessionConfig.from_json`` makes
any run reproducible from a committed file.)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
