"""Figure 8: predicted vs measured gradient-error sigma across the conv
layers of AlexNet and VGG-16 (scaled variants), plus the fitted
coefficient's stability (the paper identifies a = 0.32 in its mean-|L|
convention; the rms convention is exactly 1/sqrt(3)).
"""

import numpy as np
import pytest

from _common import smooth_activation, write_report
from repro.analysis import conv_gradient_error_sample
from repro.core import THEORY_COEFFICIENT_A, fit_coefficient, predict_sigma
from repro.nn import Conv2D

EB = 1e-3

# (name, batch, in_ch, out_ch, spatial) spanning AlexNet/VGG-like layers
LAYERS = [
    ("alexnet-conv2", 16, 24, 32, 14),
    ("alexnet-conv3", 16, 32, 48, 7),
    ("alexnet-conv5", 16, 48, 32, 7),
    ("vgg-conv1_2", 8, 16, 16, 32),
    ("vgg-conv3_1", 8, 32, 64, 8),
]


def measure_layer(name, n, cin, cout, hw, rng):
    x = smooth_activation(rng, (n, cin, hw, hw), sigma=1.0, relu=True)
    conv = Conv2D(cin, cout, 3, padding=1, rng=2)
    dout = (rng.standard_normal((n, cout, hw, hw)) / n).astype(np.float32)
    errs = conv_gradient_error_sample(conv, x, dout, EB, trials=3, preserve_zeros=True, rng=9)
    measured = float(errs.std())
    lrms = float(np.sqrt((dout.astype(np.float64) ** 2).mean()))
    m = n * hw * hw
    r = float(np.count_nonzero(x)) / x.size
    predicted = predict_sigma(EB, lrms, m, nonzero_ratio=r)
    lmean = float(np.abs(dout).mean())
    return measured, predicted, lrms, lmean, m, r


def test_fig08_report(benchmark):
    rng = np.random.default_rng(8)

    def run_all():
        return [(name, *measure_layer(name, n, ci, co, hw, rng))
                for name, n, ci, co, hw in LAYERS]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        "Figure 8 — measured vs predicted gradient-error sigma per layer",
        f"{'layer':14s} {'measured':>11s} {'predicted':>11s} {'ratio':>7s}",
    ]
    meas, ebs, lrms_l, lmean_l, ms, rs = [], [], [], [], [], []
    for name, m_sigma, p_sigma, lrms, lmean, m, r in results:
        rows.append(f"{name:14s} {m_sigma:>11.3e} {p_sigma:>11.3e} {m_sigma / p_sigma:>7.3f}")
        meas.append(m_sigma); ebs.append(EB); lrms_l.append(lrms)
        lmean_l.append(lmean); ms.append(m); rs.append(r)
        assert m_sigma == pytest.approx(p_sigma, rel=0.2)

    a_rms = fit_coefficient(meas, ebs, lrms_l, ms, rs)
    a_mean = fit_coefficient(meas, ebs, lmean_l, ms, rs)
    rows += [
        f"fitted coefficient (rms-loss convention)  a = {a_rms:.3f}  "
        f"(theory 1/sqrt(3) = {THEORY_COEFFICIENT_A:.3f})",
        f"fitted coefficient (mean-|L| convention)  a = {a_mean:.3f}  "
        f"(paper reports 0.32 at its scale/convention)",
        "paper: one coefficient fits all layers and the prediction aligns — matched",
    ]
    write_report("fig08_sigma_prediction", rows)
    assert a_rms == pytest.approx(THEORY_COEFFICIENT_A, rel=0.12)
