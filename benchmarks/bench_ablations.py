"""Ablations over the design choices DESIGN.md calls out.

* zero-preserving filter on/off (Section 4.4) — sparsity survival and
  the gradient-error sigma it buys;
* entropy stage: huffman vs zlib vs huffman+zlib vs none;
* chunked vs pointer-jumping Huffman decoding;
* collection interval W sensitivity (Section 4.1);
* ratio vs error-bound sweep (the knob Eq. 9 turns);
* baseline codec comparison on one activation tensor (SZ vs JPEG vs
  lossless — the Section 2 landscape).
"""

import numpy as np
import pytest

from _common import smooth_activation, write_report
from repro.compression import (
    DeflateCompressor,
    JpegLikeCompressor,
    SparseLosslessCompressor,
    SZCompressor,
    max_abs_error,
)
from repro.compression.szlike.huffman import build_codebook, huffman_decode, huffman_encode


@pytest.fixture(scope="module")
def act():
    rng = np.random.default_rng(17)
    return smooth_activation(rng, (8, 32, 32, 32), sigma=1.2, relu=True)


def test_ablation_zero_filter(act, benchmark):
    eb = 1e-2

    def run():
        out = {}
        for zf in (False, True):
            c = SZCompressor(eb, entropy="zlib", zero_filter=zf,
                             emulate_zero_drift=True, rng=3)
            y = c.roundtrip(act)
            out[zf] = float(np.count_nonzero(y) / y.size)
        return out

    nz = benchmark.pedantic(run, rounds=1, iterations=1)
    true_nz = np.count_nonzero(act) / act.size
    rows = [
        "Ablation — Section 4.4 zero-preserving filter (cuSZ drift emulated)",
        f"true nonzero ratio:            {true_nz:.3f}",
        f"filter OFF nonzero ratio:      {nz[False]:.3f} (zeros drifted to small values)",
        f"filter ON  nonzero ratio:      {nz[True]:.3f} (sparsity restored)",
        f"sigma benefit: sqrt(R) factor {np.sqrt(true_nz):.3f} becomes available (Eq. 7)",
    ]
    write_report("ablation_zero_filter", rows)
    assert nz[False] > 0.95
    assert nz[True] == pytest.approx(true_nz, abs=0.02)


def test_ablation_entropy_stage(act, benchmark):
    eb = 1e-3

    def run():
        out = {}
        for ent in ("none", "zlib", "huffman", "huffman+zlib"):
            c = SZCompressor(eb, entropy=ent)
            ct = c.compress(act)
            assert max_abs_error(act, c.decompress(ct)) <= eb * (1 + 1e-6)
            out[ent] = ct.compression_ratio
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["Ablation — entropy stage (same codes, eb = 1e-3)",
            f"{'stage':14s} {'ratio':>7s}"]
    for ent, r in ratios.items():
        rows.append(f"{ent:14s} {r:>6.1f}x")
    rows.append("huffman (cuSZ-faithful) > zlib alone > none; +zlib squeezes a bit more")
    write_report("ablation_entropy_stage", rows)
    assert ratios["huffman"] > ratios["none"]
    assert ratios["huffman+zlib"] >= ratios["huffman"] * 0.95


class TestDecoderAblation:
    @pytest.fixture(scope="class")
    def stream(self, act):
        c = SZCompressor(1e-3, entropy="none")
        from repro.compression.szlike.quantizer import codes_from_residuals, prequantize
        from repro.compression.szlike.lorenzo import lorenzo_encode

        q = prequantize(act, 1e-3)
        codes = codes_from_residuals(lorenzo_encode(q, 2), 512).codes
        cb = build_codebook(codes, 1024)
        payload, bits, chunks = huffman_encode(codes, cb)
        return payload, bits, codes, cb, chunks

    def test_chunked_decode(self, stream, benchmark):
        payload, bits, codes, cb, chunks = stream
        out = benchmark(huffman_decode, payload, bits, codes.size, cb, chunks)
        assert np.array_equal(out.astype(codes.dtype), codes)

    def test_pointer_jump_decode(self, stream, benchmark):
        payload, bits, codes, cb, chunks = stream
        out = benchmark(huffman_decode, payload, bits, codes.size, cb, None)
        assert np.array_equal(out.astype(codes.dtype), codes)


def test_ablation_w_interval(benchmark):
    """Section 4.1: larger W -> fewer collections, ratio barely moves."""
    from repro.core import AdaptiveConfig, CompressedTraining
    from repro.models import build_scaled_model
    from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

    ds = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)

    def run():
        out = {}
        for W in (10, 40):
            net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=42)
            opt = SGD(net.parameters(), lr=0.01, momentum=0.9)
            tr = Trainer(net, opt)
            sess = CompressedTraining(
                net, opt, config=AdaptiveConfig(W=W, warmup_iterations=3)
            ).attach(tr)
            tr.train(batches(ds, 32, 60, seed=1))
            out[W] = (sess.controller.updates, sess.tracker.overall_ratio)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["Ablation — collection interval W (Section 4.1)",
            f"{'W':>4s} {'collections':>12s} {'overall ratio':>14s}"]
    for W, (updates, ratio) in res.items():
        rows.append(f"{W:>4d} {updates:>12d} {ratio:>13.1f}x")
    rows.append("ratio is insensitive to W; overhead scales with 1/W (paper uses W=1000)")
    write_report("ablation_w_interval", rows)
    assert res[10][0] > res[40][0]
    assert res[40][1] == pytest.approx(res[10][1], rel=0.35)


def test_ablation_eb_sweep(act, benchmark):
    def run():
        c = SZCompressor(entropy="huffman")
        return {eb: c.compress(act, error_bound=eb).compression_ratio
                for eb in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)}

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["Ablation — compression ratio vs error bound (the Eq. 9 knob)",
            f"{'eb':>8s} {'ratio':>8s}"]
    for eb, r in ratios.items():
        rows.append(f"{eb:>8.0e} {r:>7.1f}x")
    write_report("ablation_eb_sweep", rows)
    vals = list(ratios.values())
    assert all(a <= b * 1.01 for a, b in zip(vals, vals[1:]))  # monotone


def test_ablation_codec_landscape(act, benchmark):
    """Section 2's comparison on one tensor: ratio and error control."""
    def run():
        out = {}
        sz = SZCompressor(1e-3, entropy="huffman")
        ct = sz.compress(act)
        out["sz (eb=1e-3)"] = (ct.compression_ratio, max_abs_error(act, sz.decompress(ct)))
        j = JpegLikeCompressor(quality=50)
        jt = j.compress(act)
        out["jpeg-like q50"] = (jt.compression_ratio, max_abs_error(act, j.decompress(jt)))
        for name, codec in (("deflate", DeflateCompressor()),
                            ("sparse-lossless", SparseLosslessCompressor())):
            lt = codec.compress(act)
            out[name] = (lt.compression_ratio, 0.0)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["Section 2 landscape — ratio and max error per codec class",
            f"{'codec':18s} {'ratio':>8s} {'max |err|':>12s} {'bounded?':>9s}"]
    for name, (ratio, err) in res.items():
        bounded = "yes" if name.startswith(("sz", "deflate", "sparse")) else "NO"
        rows.append(f"{name:18s} {ratio:>7.1f}x {err:>12.2e} {bounded:>9s}")
    rows.append("paper: lossless <= ~2x, JPEG-class ~7x unbounded error, ours ~10x+ bounded")
    write_report("ablation_codec_landscape", rows)
    assert res["sz (eb=1e-3)"][0] > res["deflate"][0]
    assert res["sz (eb=1e-3)"][1] <= 1e-3 * (1 + 1e-6)
