"""Steady-state codec hot path: amortized entropy stage, measured.

PR 4's claim is that the compress path that runs every iteration —
quantize, predict, entropy-code — got structurally cheaper: the
canonical Huffman codebook is reused across iterations
(:class:`~repro.compression.szlike.codebook_cache.CodebookCache`), the
encoder is word-packed and blocked (O(block) scratch instead of an
8x-payload bit expansion), and the chunked decoder reads codeword
windows straight out of the packed bytes.  This benchmark records it
instead of claiming it:

* **legacy** — the pre-PR path, reconstructed from the same public
  stages: fresh codebook build per step + the ``packer="bitplane"``
  reference encoder.
* **cache-off** — the new kernels, fresh codebook per step.
* **warm cache** — the new kernels with a per-key codebook cache in its
  steady state (built once, staleness-checked per step).

Steps feed *evolving* activations (base field + small per-step
perturbation) so the cache's staleness check runs against realistic
drift, not a frozen tensor.  Peak encode scratch is measured with
``tracemalloc`` and asserted at <= 2x the packed payload (the legacy
bit-plane expansion alone is ~8x).

Set ``REPRO_BENCH_QUICK=1`` for a CI-scale smoke run (small tensor; the
>= 1.5x steady-state assertion is skipped — containers are noisy — but
every number is still emitted to ``BENCH_hotpath.json`` and gated
against the baseline).
"""

import pickle
import time
import tracemalloc
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from _common import QUICK, metric, smooth_activation, write_bench_json, write_report
from repro.compression import CodebookCache, SZCompressor
from repro.compression.szlike import SharedCodebookCache, build_codebook
from repro.compression.szlike.huffman import _encode_bitplane, huffman_encode
from repro.compression.szlike.lorenzo import lorenzo_encode
from repro.compression.szlike.quantizer import codes_from_residuals, prequantize
from repro.kernels import available_backends, kernel_stats
from repro.utils import StageProfiler

#: VGG-16 conv3-class activation (the paper's headline workload)
SHAPE = (8, 16, 28, 28) if QUICK else (32, 64, 56, 56)
STEPS = 3 if QUICK else 8
#: fixed tensor for the scratch-memory measurement: large enough that
#: the encoder's bounded per-block staging is amortized (quick mode's
#: tiny tensor would measure the constant, not the behaviour)
SCRATCH_SHAPE = (16, 32, 56, 56)
EB = 1e-3
DICT = 1024


def _probe_shared_compress(comp_bytes, x, key):
    """Worker-side compress (module-level: the pool pickles it).  The
    unpickled clone starts with zeroed counters, so the returned stats
    measure exactly what *this* call did."""
    comp = pickle.loads(comp_bytes)
    comp.compress(x, cache_key=key)
    return comp.codebook_cache.stats()


@pytest.fixture(scope="module")
def stream():
    """Adjacent-iteration activation stream: stable distribution with
    small per-step drift (the premise cuSZ's amortization rests on)."""
    rng = np.random.default_rng(4)
    base = smooth_activation(rng, SHAPE, sigma=1.2, relu=False)
    steps = []
    for _ in range(STEPS + 1):  # +1 warm-up step
        drift = smooth_activation(rng, SHAPE, sigma=1.2, relu=False)
        steps.append(np.maximum(base + 0.05 * drift, 0).astype(np.float32))
    return steps


def _legacy_compress(x):
    """The pre-PR compress path, stage for stage: allocating quantize /
    predict / code stages, a fresh codebook build, and the bit-plane
    encoder."""
    q = prequantize(x, EB)
    delta = lorenzo_encode(q, 2)
    qr = codes_from_residuals(delta, DICT // 2)
    cb = build_codebook(qr.codes, DICT)
    payload, total_bits, chunks = _encode_bitplane(qr.codes.reshape(-1), cb, 4096)
    return payload


def test_hotpath_amortized_compress(stream, benchmark):
    comp_off = SZCompressor(EB, entropy="huffman")
    comp_on = SZCompressor(EB, entropy="huffman", codebook_cache=True)
    profiler = StageProfiler()

    def run():
        times = {"legacy": 0.0, "cache_off": 0.0, "cache_warm": 0.0, "decode": 0.0}
        # Warm-up: first step builds the cached book and the scratch pool.
        _legacy_compress(stream[0])
        comp_off.compress(stream[0])
        comp_on.compress(stream[0], cache_key="bench")
        with profiler:
            for x in stream[1:]:
                t0 = time.perf_counter()
                _legacy_compress(x)
                t1 = time.perf_counter()
                comp_off.compress(x)
                t2 = time.perf_counter()
                ct = comp_on.compress(x, cache_key="bench")
                t3 = time.perf_counter()
                y = comp_on.decompress(ct)
                t4 = time.perf_counter()
                times["legacy"] += t1 - t0
                times["cache_off"] += t2 - t1
                times["cache_warm"] += t3 - t2
                times["decode"] += t4 - t3
                # the bound must hold under the warm (possibly stale) book
                ulp = float(np.spacing(np.float32(np.abs(x).max())))
                assert np.abs(x.astype(np.float64) - y).max() <= EB * (1 + 1e-6) + ulp
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    mb = float(np.prod(SHAPE)) * 4 / 1e6 * STEPS
    speedup_vs_legacy = times["legacy"] / times["cache_warm"]
    cache_speedup = times["cache_off"] / times["cache_warm"]
    stats = comp_on.codebook_cache.stats()

    # -- encode scratch: tracemalloc peak beyond the returned payload ----
    # Measured on a fixed tensor (independent of QUICK) so the encoder's
    # bounded per-block staging is amortized the way real activations
    # amortize it; "scratch" = transient allocations beyond the one
    # unavoidable output byte string.
    rng = np.random.default_rng(11)
    xs = smooth_activation(rng, SCRATCH_SHAPE, sigma=1.2, relu=True)
    q = prequantize(xs, EB)
    qr = codes_from_residuals(lorenzo_encode(q, 2), DICT // 2)
    cb = build_codebook(qr.codes, DICT)
    syms = qr.codes.reshape(-1)
    huffman_encode(syms, cb)  # warm any lazy setup before measuring
    tracemalloc.start()
    payload, _, _ = huffman_encode(syms, cb)
    _, peak_words = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    _encode_bitplane(syms, cb, 4096)
    _, peak_bitplane = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    scratch_ratio = (peak_words - len(payload)) / len(payload)
    legacy_ratio = (peak_bitplane - len(payload)) / len(payload)

    # -- cross-process codebook cache: steady-state build count ----------
    # PR 7's claim: process-pool workers adopt published canonical books
    # from the shared segment instead of rebuilding per worker per step.
    # Counters, not timings — build count is deterministic, IPC is not.
    shared = SharedCodebookCache()
    comp_shared = SZCompressor(EB, entropy="huffman", codebook_cache=shared)
    rng = np.random.default_rng(12)
    probe = smooth_activation(rng, (4, 8, 28, 28), sigma=1.2, relu=True)
    blob = pickle.dumps(comp_shared)
    worker_stats = []
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            for _ in range(4):
                worker_stats.append(
                    pool.submit(
                        _probe_shared_compress, blob, probe, ("bench", "shared")
                    ).result()
                )
    finally:
        shared.close()
    cold_builds = worker_stats[0]["builds"]
    steady_builds = sum(s["builds"] for s in worker_stats[1:])
    steady_calls = len(worker_stats) - 1
    steady_adoptions = sum(s["shared_adoptions"] for s in worker_stats[1:])
    shared_adoption_rate = steady_adoptions / steady_calls

    # -- kernel backend axis: encode/decode per available backend --------
    # Same stream, one codec per backend.  "auto" probing + warmup ran at
    # import, so JIT compilation never lands inside these timings.
    backend_times = {}
    for backend in available_backends():
        comp_b = SZCompressor(EB, entropy="huffman", kernel_backend=backend)
        comp_b.compress(stream[0])  # warm the scratch pool
        enc = dec = 0.0
        for x in stream[1:]:
            t0 = time.perf_counter()
            ct_b = comp_b.compress(x)
            t1 = time.perf_counter()
            comp_b.decompress(ct_b)
            t2 = time.perf_counter()
            enc += t1 - t0
            dec += t2 - t1
        backend_times[backend] = {"encode": enc, "decode": dec}
    auto_selected = SZCompressor(EB, entropy="huffman").kernel_backend_selected

    snap = profiler.snapshot()
    rows = [
        f"Amortized entropy hot path on {SHAPE} float32 x {STEPS} steps"
        + (" [QUICK]" if QUICK else ""),
        f"{'path':12s} {'total':>9s} {'MB/s':>8s}",
    ]
    for name in ("legacy", "cache_off", "cache_warm", "decode"):
        rows.append(f"{name:12s} {times[name]:>8.3f}s {mb / times[name]:>7.1f}")
    rows += [
        f"steady-state speedup vs legacy path: {speedup_vs_legacy:.2f}x "
        f"(acceptance: >= 1.5x)",
        f"warm cache vs fresh-build (same kernels): {cache_speedup:.2f}x",
        f"cache: {stats['hits']} hits / {stats['builds']} builds / "
        f"{stats['rebuilds_delta']}+{stats['rebuilds_refresh']}+{stats['rebuilds_escape']} "
        f"rebuilds (delta/refresh/escape), {stats['escaped_symbols']} escaped symbols",
        f"encode scratch peak: {scratch_ratio:.2f}x payload "
        f"(bit-plane legacy: {legacy_ratio:.2f}x; acceptance: <= 2x)",
        f"shared codebook cache (process pool): {cold_builds} cold build, "
        f"{steady_builds} steady-state builds across {steady_calls} worker "
        f"compresses ({steady_adoptions} segment adoptions)",
        f"kernel backends: {', '.join(backend_times)} (auto -> {auto_selected})",
    ]
    for backend, t in backend_times.items():
        rows.append(
            f"  {backend:8s} encode {mb / t['encode']:>7.1f} MB/s, "
            f"decode {mb / t['decode']:>7.1f} MB/s"
        )
    rows += ["profiler stages (steady-state loop):"]
    rows += ["  " + line for line in profiler.report_lines()]
    write_report("hotpath", rows)

    write_bench_json(
        "hotpath",
        {
            # The headline: amortized+packed path vs the seed-era path,
            # same run, same data.  Dimensionless, so tightly gateable.
            "steady_speedup_vs_legacy": metric(
                speedup_vs_legacy, "x", gate=True, tolerance=0.25 if not QUICK else 0.50
            ),
            "cache_on_vs_off_speedup": metric(cache_speedup, "x"),
            "warm_compress_mb_per_s": metric(
                mb / times["cache_warm"], "MB/s", gate=True,
                tolerance=0.25 if not QUICK else 0.60,
            ),
            "decode_mb_per_s": metric(
                mb / times["decode"], "MB/s", gate=True,
                tolerance=0.25 if not QUICK else 0.60,
            ),
            # Deterministic allocation behaviour: tight band.
            "encode_scratch_ratio": metric(
                scratch_ratio, "x payload", higher_is_better=False, gate=True,
                tolerance=0.15,
            ),
            "legacy_scratch_ratio": metric(
                legacy_ratio, "x payload", higher_is_better=False
            ),
            # Deterministic counters: steady-state worker builds must be
            # zero; the adoption rate (1.0) is the tightly-gated form.
            "shared_steady_builds": metric(
                steady_builds, "builds", higher_is_better=False
            ),
            "shared_adoption_rate": metric(
                shared_adoption_rate, "frac", gate=True, tolerance=0.01
            ),
            # Per-backend throughput (ungated: the backend set varies by
            # host; the numba-vs-numpy ordering is hard-asserted below).
            **{
                f"{stage}_mb_per_s_{backend}": metric(mb / t[stage], "MB/s")
                for backend, t in backend_times.items()
                for stage in ("encode", "decode")
            },
        },
        context={
            "shape": list(SHAPE),
            "steps": STEPS,
            "cache": stats,
            "shared_cache": {"cold": worker_stats[0], "steady": worker_stats[-1]},
            "kernel_backends": {
                "available": list(backend_times),
                "auto_selected": auto_selected,
                "stats": kernel_stats(),
                "times": backend_times,
            },
            "profiler": snap,
        },
    )

    # Hard acceptance claims (absolute, not baseline-relative): the
    # scratch bound is deterministic and holds at any scale; the speedup
    # is asserted only at full scale where timing noise is small.
    assert scratch_ratio <= 2.0, f"encode scratch {scratch_ratio:.2f}x payload"
    assert stats["hits"] >= STEPS - 1  # the cache actually amortized
    assert cold_builds == 1 and steady_builds == 0, worker_stats
    assert shared_adoption_rate == 1.0, worker_stats
    if not QUICK:
        assert speedup_vs_legacy >= 1.5, (
            f"steady-state compress only {speedup_vs_legacy:.2f}x faster than legacy"
        )
    # Where numba is installed the compiled backend must be no slower
    # than the reference on either stage (small margin for timer noise;
    # quick/CI containers get a wider one).
    if "numba" in backend_times:
        margin = 1.25 if QUICK else 1.05
        for stage in ("encode", "decode"):
            t_numba = backend_times["numba"][stage]
            t_numpy = backend_times["numpy"][stage]
            assert t_numba <= t_numpy * margin, (
                f"numba {stage} {t_numba:.3f}s slower than numpy {t_numpy:.3f}s"
            )


def test_hotpath_cache_matches_fresh_bits(stream):
    """Sanity alongside the timing: on a stable stream the warm-cache
    reconstruction is within the bound AND byte-exact accounting holds
    (nbytes vs dumps) — the perf knob changes no contracts."""
    from repro.compression.szlike import dumps
    from repro.compression.szlike.compressor import HEADER_BYTES
    from repro.compression.szlike.serialize import wire_header_nbytes

    comp = SZCompressor(EB, entropy="huffman", codebook_cache=CodebookCache())
    for x in stream[:3]:
        ct = comp.compress(x, cache_key="bench")
        blob = dumps(ct)
        assert ct.nbytes == len(blob) - wire_header_nbytes(blob) + HEADER_BYTES
