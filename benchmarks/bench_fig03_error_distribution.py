"""Figure 3: error distribution of activation data compressed by the
cuSZ-style compressor at error bound 1e-4 — expected uniform in
(-eb, +eb).

Also benchmarks compressor round-trip throughput on the same tensor.
"""

import numpy as np
import pytest

from _common import smooth_activation, write_report
from repro.analysis import describe_sample
from repro.compression import SZCompressor

EB = 1e-4


@pytest.fixture(scope="module")
def conv5_like():
    """AlexNet Conv-5-scale activation tensor (batch 16, 256x13x13)."""
    rng = np.random.default_rng(11)
    return smooth_activation(rng, (16, 256, 13, 13), sigma=1.0, relu=True)


def test_fig03_report(conv5_like, benchmark):
    comp = SZCompressor(EB, entropy="huffman", zero_filter=False)

    ct = benchmark(comp.compress, conv5_like)
    y = comp.decompress(ct)
    err = (conv5_like.astype(np.float64) - y).reshape(-1)
    nonzero_err = err[conv5_like.reshape(-1) != 0]
    rep = describe_sample(nonzero_err, uniform_bound=EB)

    hist, edges = np.histogram(nonzero_err, bins=11, range=(-EB, EB))
    hist = hist / hist.sum()
    rows = [
        f"Figure 3 — cuSZ-style reconstruction error distribution (eb = {EB:g})",
        f"samples: {rep.n}   mean: {rep.mean:+.2e}   std: {rep.std:.2e} "
        f"(uniform expectation eb/sqrt(3) = {EB / np.sqrt(3):.2e})",
        f"uniform KS p-value: {rep.uniform_ks_pvalue:.3f}   "
        f"within +-std: {rep.within_one_sigma:.3f} (uniform expectation 0.577)",
        "normalized histogram over (-eb, +eb):",
        "  " + " ".join(f"{h:.3f}" for h in hist),
        f"compression ratio at eb={EB:g}: {ct.compression_ratio:.1f}x",
        "paper: error distribution is uniform (Figure 3) — matched" if rep.uniform_ks_pvalue > 1e-3 else "MISMATCH",
    ]
    write_report("fig03_error_distribution", rows)
    assert rep.std == pytest.approx(EB / np.sqrt(3), rel=0.1)
    assert abs(rep.mean) < 0.05 * EB
    assert hist.max() / hist.min() < 1.3  # flat histogram
