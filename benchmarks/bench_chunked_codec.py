"""Chunked parallel compression: wall-clock win on the pack/unpack path.

The compressing context sits on the hot path of every training
iteration — each conv activation is compressed on forward and
decompressed on backward.  :class:`ChunkedCodec` splits the activation
along the batch axis and runs the chunks through a worker pool: threads
by default (zlib and the vectorized NumPy stages release the GIL), or
``executor="process"`` to also parallelize the GIL-bound Huffman
codebook build at the price of pickling chunks across the process
boundary — both axes are measured here against the single-threaded path.

Set ``REPRO_BENCH_QUICK=1`` for a CI-scale smoke run (smaller tensor,
fewer repeats, no speedup assertion — containers may have one core).
"""

import os
import time

import numpy as np
import pytest

from _common import metric, smooth_activation, write_bench_json, write_report
from repro.compression import ChunkedCodec, get_codec

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
#: VGG-16 conv3-class activation at batch 32 (the acceptance tensor)
SHAPE = (8, 16, 28, 28) if QUICK else (32, 64, 56, 56)
REPEATS = 1 if QUICK else 3
MIN_CHUNK = 1 << 14 if QUICK else 1 << 20
WORKER_COUNTS = (2, 4) if QUICK else (2, 4, 8)


@pytest.fixture(scope="module")
def act():
    rng = np.random.default_rng(4)
    return smooth_activation(rng, SHAPE, sigma=1.2, relu=True)


def _best_of(fn, repeats=REPEATS):
    """Best-of-N wall clock (noise-robust) plus the last return value."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_chunked_codec_beats_single_thread(act, benchmark):
    def run():
        rows = []
        for entropy in ("zlib", "huffman"):
            sz = get_codec("szlike", error_bound=1e-3, entropy=entropy)
            variants = [("single", sz)] + [
                (f"chunked w={w}", ChunkedCodec(sz, workers=w, min_chunk_nbytes=MIN_CHUNK))
                for w in WORKER_COUNTS
            ]
            if entropy == "huffman":
                # The codebook build is GIL-bound Python — the case the
                # process executor exists for.
                variants += [
                    (f"proc w={w}", ChunkedCodec(
                        sz, workers=w, min_chunk_nbytes=MIN_CHUNK, executor="process"))
                    for w in WORKER_COUNTS[:2]
                ]
            for label, codec in variants:
                codec.decompress(codec.compress(act))  # warm-up
                t_c, ct = _best_of(lambda c=codec: c.compress(act))
                t_d, y = _best_of(lambda c=codec, t=ct: c.decompress(t))
                assert y.shape == act.shape
                rows.append((entropy, label, t_c, t_d, ct.compression_ratio))
                if codec is not sz:
                    codec.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    mb = act.nbytes / 1e6
    report = [
        f"Chunked parallel codec on {SHAPE} float32 ({mb:.1f} MB)"
        + (" [QUICK]" if QUICK else ""),
        f"{'entropy':8s} {'variant':14s} {'compress':>9s} {'decompress':>11s}"
        f" {'total':>8s} {'ratio':>6s}",
    ]
    totals = {}
    for entropy, label, t_c, t_d, ratio in rows:
        totals[(entropy, label)] = t_c + t_d
        report.append(
            f"{entropy:8s} {label:14s} {t_c:>8.3f}s {t_d:>10.3f}s"
            f" {t_c + t_d:>7.3f}s {ratio:>5.1f}x"
        )
    bench_metrics = {}
    for entropy in ("zlib", "huffman"):
        single = totals[(entropy, "single")]
        best_label, best = min(
            ((l, t) for (e, l), t in totals.items() if e == entropy and l != "single"),
            key=lambda kv: kv[1],
        )
        report.append(
            f"{entropy}: best parallel variant ({best_label}) is "
            f"{single / best:.2f}x the single-threaded throughput"
        )
        # Single-thread MB/s is the machine's codec baseline (gated,
        # wide band); the parallel speedup is the feature under guard.
        bench_metrics[f"{entropy}_single_mb_per_s"] = metric(
            # Quick mode measures a tiny tensor once: widen the band so
            # shared-runner scheduler noise cannot fail the gate.
            mb / single, "MB/s", gate=True, tolerance=0.25 if not QUICK else 0.60
        )
        bench_metrics[f"{entropy}_parallel_speedup"] = metric(single / best, "x")
        ratio = next(r for e, l, _, _, r in rows if e == entropy and l == "single")
        bench_metrics[f"{entropy}_compression_ratio"] = metric(
            ratio, "x", gate=True, tolerance=0.10
        )
    write_report("chunked_codec", report)
    write_bench_json(
        "chunked_codec", bench_metrics, context={"shape": list(SHAPE), "repeats": REPEATS}
    )

    if not QUICK and (os.cpu_count() or 1) >= 2:
        # The acceptance claim: some workers>1 configuration beats the
        # single-threaded path on the full-size tensor.  (Meaningless on
        # a single-core box — the report above is still written.)
        for entropy in ("zlib", "huffman"):
            single = totals[(entropy, "single")]
            best = min(t for (e, l), t in totals.items() if e == entropy and l != "single")
            assert best < single, f"no parallel win for entropy={entropy}"


def test_chunked_matches_unchunked_bytes(act):
    """Sanity alongside the timing: parallelism must not change results."""
    sz = get_codec("szlike", error_bound=1e-3, entropy="zlib")
    ck = ChunkedCodec(sz, workers=4, min_chunk_nbytes=MIN_CHUNK)
    np.testing.assert_array_equal(
        ck.decompress(ck.compress(act)), sz.decompress(sz.compress(act))
    )


def test_process_executor_matches_threads(act):
    """The process backend is a pure performance knob: identical bytes."""
    sz = get_codec("szlike", error_bound=1e-3, entropy="huffman")
    th = ChunkedCodec(sz, workers=2, min_chunk_nbytes=MIN_CHUNK)
    pr = ChunkedCodec(sz, workers=2, min_chunk_nbytes=MIN_CHUNK, executor="process")
    ct_t, ct_p = th.compress(act), pr.compress(act)
    assert ct_t.nbytes == ct_p.nbytes
    np.testing.assert_array_equal(th.decompress(ct_t), pr.decompress(ct_p))
    th.close()
    pr.close()
