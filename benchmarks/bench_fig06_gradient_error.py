"""Figure 6: distribution of the gradient error when injecting modeled
compression error into conv activations.

6a — error injected everywhere: gradient error is normal (68.2% within
one sigma).  6b — zeros preserved (the Section 4.4 filter): sigma shrinks
by sqrt(R).
"""

import numpy as np
import pytest

from _common import smooth_activation, write_report
from repro.analysis import conv_gradient_error_sample, describe_sample
from repro.nn import Conv2D

EB = 1e-3


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(5)
    x = smooth_activation(rng, (16, 16, 20, 20), sigma=1.2, relu=True)
    conv = Conv2D(16, 24, 3, padding=1, rng=3)
    dout = (rng.standard_normal((16, 24, 20, 20)) / 16).astype(np.float32)
    return rng, x, conv, dout


def test_fig06_report(setup, benchmark):
    rng, x, conv, dout = setup
    r = np.count_nonzero(x) / x.size

    errs_a = benchmark.pedantic(
        lambda: conv_gradient_error_sample(conv, x, dout, EB, trials=3, rng=7),
        rounds=1, iterations=1,
    )
    errs_b = conv_gradient_error_sample(
        conv, x, dout, EB, trials=3, preserve_zeros=True, rng=7
    )
    rep_a = describe_sample(errs_a)
    rep_b = describe_sample(errs_b)
    rows = [
        "Figure 6 — gradient-error distribution under injected activation error",
        f"layer: conv 16->24 3x3, batch 16, eb = {EB:g}, nonzero ratio R = {r:.3f}",
        f"(6a) all elements perturbed : sigma = {rep_a.std:.3e}, within +-sigma = {rep_a.within_one_sigma:.3f} "
        f"(normal expectation 0.682), KS-normal p = {rep_a.normal_ks_pvalue:.3f}",
        f"(6b) zeros preserved        : sigma = {rep_b.std:.3e}, within +-sigma = {rep_b.within_one_sigma:.3f}, "
        f"KS-normal p = {rep_b.normal_ks_pvalue:.3f}",
        f"sigma ratio (6b/6a) = {rep_b.std / rep_a.std:.3f}, sqrt(R) = {np.sqrt(r):.3f}",
        "paper: both normal, ~68.2% within sigma, sigma decreases with zeros kept — matched",
    ]
    write_report("fig06_gradient_error", rows)
    assert rep_a.within_one_sigma == pytest.approx(0.682, abs=0.03)
    assert rep_b.within_one_sigma == pytest.approx(0.682, abs=0.03)
    assert rep_b.std / rep_a.std == pytest.approx(np.sqrt(r), rel=0.1)
