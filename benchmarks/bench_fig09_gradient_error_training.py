"""Figure 9: training accuracy under injected gradient error of
sigma = fraction * G-bar (average gradient magnitude).

The paper, training AlexNet/ImageNet near convergence, finds 0.01 benign,
0.02 marginal, 0.05 unrecoverable.  At CPU scale the task is easier and
the tolerance threshold sits higher; the *shape* to reproduce is
monotone: small fractions indistinguishable from baseline, very large
fractions destroy training.  (The sigma=0.01 operating point the
framework uses must land in the benign region.)
"""

import numpy as np
import pytest

from _common import write_report
from repro.analysis import GradientErrorInjector
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

FRACTIONS = [0.0, 0.01, 0.05, 16.0, 64.0]
ITERS = 120


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(num_classes=8, image_size=32, channels=3, signal=0.35, seed=7)


def train_once(dataset, fraction, seed=1):
    net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=43)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    tr = Trainer(net, opt)
    if fraction > 0:
        tr.grad_transforms.append(
            GradientErrorInjector(fraction, rng=np.random.default_rng(seed + 100))
        )
    tr.train(batches(dataset, 32, ITERS, seed=seed))
    ev = dataset.fixed_eval_set(384)
    return tr.evaluate(*ev)


def test_fig09_report(dataset, benchmark):
    accs = {}

    def sweep():
        for f in FRACTIONS:
            accs[f] = train_once(dataset, f)
        return accs

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        f"Figure 9 — accuracy after {ITERS} iterations vs injected gradient error",
        f"{'sigma (xG)':>10s} {'eval accuracy':>14s}",
    ]
    for f in FRACTIONS:
        rows.append(f"{f:>10.2f} {accs[f]:>14.3f}")
    rows += [
        "paper shape: sigma=0.01G indistinguishable from baseline; large sigma",
        "destroys training (the paper's cliff is at 0.05 near ImageNet convergence;",
        "at CPU scale the cliff sits at a larger fraction — same monotone shape).",
    ]
    write_report("fig09_gradient_error_training", rows)
    assert accs[0.01] > accs[0.0] - 0.05  # benign at the operating point
    assert accs[0.05] > accs[0.0] - 0.10  # still benign at CPU scale
    assert accs[64.0] < accs[0.0] - 0.2  # catastrophic past the cliff
    assert accs[64.0] <= accs[16.0] + 0.05  # monotone tail
