import sys
import os

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--payload-scale",
        type=float,
        default=1.0,
        help="bench_ddp: widen the net so per-step gradient payloads grow "
        "by roughly this factor (e.g. 8 pushes the exchange to MB-scale "
        "payloads, where the fabric model's wire leg dominates skew)",
    )
