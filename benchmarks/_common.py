"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation section and writes its rows to ``benchmarks/out/<name>.txt``
(stdout is captured by pytest unless ``-s`` is passed, so the files are
the durable record; EXPERIMENTS.md summarizes them).
"""

from __future__ import annotations

import os
from typing import Iterable

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_report(name: str, lines: Iterable[str]) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as f:
        f.write(text)
    print(text)
    return path


def smooth_activation(rng, shape, sigma=1.5, relu=True):
    """Realistic conv activation sample: band-limited field (+ ReLU)."""
    import numpy as np
    from scipy.ndimage import gaussian_filter

    x = rng.standard_normal(shape)
    x = gaussian_filter(x, sigma=(0,) * (len(shape) - 2) + (sigma, sigma))
    x /= x.std() + 1e-12
    if relu:
        x = np.maximum(x, 0)
    return x.astype(np.float32)
