"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation section and writes its rows to ``benchmarks/out/<name>.txt``
(stdout is captured by pytest unless ``-s`` is passed, so the files are
the durable record; EXPERIMENTS.md summarizes them).

Performance-bearing benchmarks additionally emit a machine-readable
``benchmarks/out/BENCH_<name>.json`` via :func:`write_bench_json` — the
record ``benchmarks/check_regression.py`` compares against a baseline so
CI can fail on throughput regressions instead of throwing the numbers
away.
"""

import json
import os
import platform
from typing import Dict, Iterable, Optional

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: schema version for the BENCH_*.json documents
BENCH_SCHEMA = 1


def write_report(name: str, lines: Iterable[str]) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as f:
        f.write(text)
    print(text)
    return path


def metric(
    value: float,
    unit: str = "",
    higher_is_better: bool = True,
    gate: bool = False,
    tolerance: Optional[float] = None,
) -> dict:
    """One benchmark metric.

    ``gate=True`` marks it for the regression check; *tolerance* (a
    fraction, e.g. ``0.25`` = fail beyond a 25% regression) overrides the
    checker's default band.  Dimensionless, machine-relative metrics
    (speedups, deterministic compression ratios) make stable gates; raw
    wall-clock values are usually recorded ungated for the trajectory.
    """
    doc = {
        "value": float(value),
        "unit": unit,
        "higher_is_better": bool(higher_is_better),
        "gate": bool(gate),
    }
    if tolerance is not None:
        doc["tolerance"] = float(tolerance)
    return doc


def write_bench_json(name: str, metrics: Dict[str, dict], context: Optional[dict] = None) -> str:
    """Write ``benchmarks/out/BENCH_<name>.json`` for the regression gate."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "quick": QUICK,
        "python": platform.python_version(),
        "metrics": metrics,
        "context": context or {},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def percentile(samples, pct: float) -> float:
    """Nearest-rank percentile (no interpolation, so a deterministic
    sample set gates deterministically); 0.0 on an empty sample set."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = int(round(pct / 100.0 * (len(ordered) - 1)))
    return float(ordered[max(0, min(len(ordered) - 1, rank))])


def latency_metrics(
    samples_seconds,
    prefix: str = "step_latency",
    gate: bool = False,
    tolerance: Optional[float] = None,
) -> Dict[str, dict]:
    """p50/p99 latency metrics (milliseconds) from per-operation samples.

    The shared shape for recording tail latency in a bench JSON:
    ``{<prefix>_p50_ms, <prefix>_p99_ms}``, lower-is-better.  Wall-clock
    latencies make noisy gates — gate them only with a wide *tolerance*
    band, and prefer deterministic counts for the tight gates.
    """
    out = {}
    for pct, key in ((50.0, "p50"), (99.0, "p99")):
        out[f"{prefix}_{key}_ms"] = metric(
            1e3 * percentile(samples_seconds, pct),
            unit="ms",
            higher_is_better=False,
            gate=gate,
            tolerance=tolerance,
        )
    return out


def group_summary_doc(tracker) -> list:
    """Per-policy-group memory accounting rows for a bench JSON context.

    Serializes ``MemoryTracker.group_summary()`` — one row per policy
    label with raw/stored bytes, pack count, and achieved ratio — so the
    regression record shows *where* the bytes went, not just the total.
    Sessions without policy rules have no groups: returns ``[]``.
    """
    rows = []
    for rec in tracker.group_summary():
        rows.append(
            {
                "group": rec.layer_name,
                "raw_bytes": int(rec.raw_bytes),
                "stored_bytes": int(rec.stored_bytes),
                "packs": int(rec.packs),
                "ratio": float(rec.ratio),
            }
        )
    return rows


def smooth_activation(rng, shape, sigma=1.5, relu=True):
    """Realistic conv activation sample: band-limited field (+ ReLU)."""
    import numpy as np
    from scipy.ndimage import gaussian_filter

    x = rng.standard_normal(shape)
    x = gaussian_filter(x, sigma=(0,) * (len(shape) - 2) + (sigma, sigma))
    x /= x.std() + 1e-12
    if relu:
        x = np.maximum(x, 0)
    return x.astype(np.float32)


#: CI-scale smoke mode shared by every benchmark that honors it
QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))

#: shared scale for the sync-vs-async engine axes (QUICK: CI smoke) —
#: bench_overhead and bench_fig11 must measure the same configuration
ENGINE_MODEL = "alexnet" if QUICK else "vgg16"
ENGINE_IMAGE = 16 if QUICK else 32
ENGINE_BATCH = 4 if QUICK else 16


#: the committed declarative setup every engine-axis run starts from —
#: codec, adaptive knobs, and optimizer pinned in one reviewable file
ENGINE_CONFIG = os.path.join(os.path.dirname(__file__), "configs", "engine_session.json")


def timed_engine_run(engine, model=ENGINE_MODEL, image_size=ENGINE_IMAGE,
                     batch=ENGINE_BATCH, iters=6, param_budget=None,
                     unpack_depth=None, bind_window_bytes=0, profile=False):
    """One compressed-training run for the sync-vs-async engine axes.

    Returns ``(seconds, losses, session)`` where *session* exposes the
    compressed-training internals (``tracker``, ``param_store``,
    ``engine``, and — with ``profile=True`` — ``profiler``).  The setup
    is the committed JSON config ``configs/engine_session.json`` loaded
    through the :mod:`repro.api` front door, with only the benchmark
    axes (engine kind, parameter budget, unpack/bind-window overlap
    knobs) overridden — so the benchmarked workload is reproducible
    from a reviewable file.  Deterministically seeded: two runs that
    differ only in *engine* (or any overlap knob, or in whether
    parameters live out-of-core) must produce bit-identical losses and
    tracker numbers.  ``param_budget`` (bytes) additionally moves
    weights and optimizer slots into an arena-backed ``ParamStore``
    with that in-memory budget — the full out-of-core regime.
    """
    import time

    from repro.api import SessionConfig, build_session
    from repro.models import build_scaled_model
    from repro.nn import SyntheticImageDataset, batches

    cfg = SessionConfig.from_json(ENGINE_CONFIG)
    cfg.engine.kind = engine
    if unpack_depth is not None:
        cfg.engine.unpack_depth = unpack_depth
    if bind_window_bytes:
        cfg.engine.bind_window_bytes = bind_window_bytes
    if profile:
        cfg.profiler.enabled = True
    if param_budget is not None:
        cfg.storage.params = "arena"
        cfg.storage.param_budget_bytes = param_budget

    net = build_scaled_model(model, num_classes=8, image_size=image_size, rng=42)
    session = build_session(net, cfg)
    dataset = SyntheticImageDataset(num_classes=8, image_size=image_size, signal=0.4, seed=7)
    t0 = time.perf_counter()
    session.train(batches(dataset, batch, iters, seed=1))
    elapsed = time.perf_counter() - t0
    session.close()
    return elapsed, session.history.losses, session
