"""Section 5.4: performance overhead decomposition across memory policies.

Regenerates the paper's overhead numbers: ~17% at the same batch size
(model-dependent; ~7% for VGG-16 when the saved memory funds a batch
increase), the Layrub migration comparison (2.4x memory at 24.1% cost),
plus codec throughput microbenchmarks on real activation tensors and a
*measured* sync-vs-async compression-engine comparison (the paper's
overlap claim) on a VGG-scale conv stack.

Set ``REPRO_BENCH_QUICK=1`` for a CI-scale smoke run of the engine
comparison (tiny model, no speedup assertion — containers may have one
core); the bit-identity assertions always run.
"""

import os

import numpy as np
import pytest

from _common import (
    ENGINE_BATCH,
    ENGINE_IMAGE,
    ENGINE_MODEL,
    QUICK,
    group_summary_doc,
    metric,
    smooth_activation,
    timed_engine_run,
    write_bench_json,
    write_report,
)
from repro.compression import (
    DeflateCompressor,
    JpegLikeCompressor,
    SparseLosslessCompressor,
    SZCompressor,
)
from repro.simulator import (
    BASELINE,
    MemoryPolicyModel,
    TrainingSimulator,
    V100,
    layrub_like,
    our_policy,
)


def recompute_policy():
    """Chen et al.-style recomputation: ~30% extra forward time, ~3x
    activation reduction (cheap layers only)."""
    return MemoryPolicyModel("recompute", ratio=3.0, recompute_fraction=0.30)


def test_overhead_policies_report(benchmark):
    def run():
        out = []
        for model in ("alexnet", "vgg16", "resnet50"):
            base = TrainingSimulator(model, V100, policy=BASELINE).simulate(32)
            for policy in (our_policy(11.0), layrub_like(), recompute_policy()):
                sim = TrainingSimulator(model, V100, policy=policy).simulate(32)
                out.append(
                    (model, policy.name, sim.iteration_s / base.iteration_s - 1,
                     base.stored_gb / sim.stored_gb)
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        "Section 5.4 — per-policy overhead and memory reduction (batch 32)",
        f"{'model':10s} {'policy':10s} {'overhead':>9s} {'mem reduction':>14s}",
    ]
    for model, pol, ov, mem in results:
        rows.append(f"{model:10s} {pol:10s} {ov:>8.1%} {mem:>13.1f}x")
    vgg_ours = next(ov for m, p, ov, _ in results if m == "vgg16" and p == "ours")
    lay = [(m, ov, mem) for m, p, ov, mem in results if p == "layrub"]
    rows += [
        f"paper: ~17% overhead overall; 'as low as 7%' on VGG-16 "
        f"(ours: {vgg_ours:.1%})",
        f"paper: Layrub averages 2.4x memory at 24.1% overhead "
        f"(ours: {np.mean([ov for _, ov, _ in lay]):.1%} at ~{np.mean([m for _, _, m in lay]):.1f}x)",
        "note (paper, 5.4): 1x1-kernel-heavy nets pay relatively more —",
        "compare resnet50 (bottleneck 1x1s) vs vgg16 rows above.",
    ]
    write_report("sec54_overhead", rows)
    assert 0.0 < vgg_ours < 0.15


# -- sync vs async engine: the overlap claim, measured for real ------------

ENGINE_ITERS = 2 if QUICK else 6


def test_engine_overlap_report(benchmark):
    """Async engine overlaps pack with the next layer's forward: same
    bits, byte-exact tracker numbers, lower wall clock (multi-core)."""

    def run():
        return {
            "sync": timed_engine_run("sync", iters=ENGINE_ITERS),
            "async": timed_engine_run("async", iters=ENGINE_ITERS),
            # The decode-ahead axis: speculative unpack on top of the
            # pack overlap, with the stage profiler recording how much
            # decompress time the window actually hid.
            "async+unpack": timed_engine_run(
                "async", iters=ENGINE_ITERS, unpack_depth=2, profile=True
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    t_sync, losses_sync, sess_sync = results["sync"]
    t_async, losses_async, sess_async = results["async"]
    t_unp, losses_unp, sess_unp = results["async+unpack"]

    # Contract before speed: async must be indistinguishable from sync.
    np.testing.assert_array_equal(losses_sync, losses_async)
    np.testing.assert_array_equal(losses_sync, losses_unp)
    assert sess_sync.tracker.iteration_ratios == sess_async.tracker.iteration_ratios
    assert sess_sync.tracker.iteration_ratios == sess_unp.tracker.iteration_ratios
    assert sess_sync.tracker.peak_stored_bytes == sess_async.tracker.peak_stored_bytes
    assert sess_async.tracker._live_raw == 0 and sess_async.tracker._live_stored == 0

    # Out-of-core parameters on top (a small, bounded budget forces the
    # spill + JIT-rebind path): losses must stay bit-identical and the
    # overhead is the recorded cost of full out-of-core training.  Bind
    # windows group the model's many small layers into one arena window.
    t_oov, losses_oov, sess_oov = timed_engine_run(
        "sync", iters=ENGINE_ITERS, param_budget=64 << 10,
        bind_window_bytes=64 << 10,
    )
    np.testing.assert_array_equal(losses_sync, losses_oov)
    ps = sess_oov.param_store
    oov_overhead = t_oov / t_sync - 1 if t_sync else 0.0

    eng = sess_async.engine
    eng_unp = sess_unp.engine
    overlap = sess_unp.profiler.overlap_summary() if sess_unp.profiler else {}
    hidden = overlap.get("unpack-ahead", {})
    speedup = t_sync / t_async if t_async else 0.0
    unpack_speedup = t_sync / t_unp if t_unp else 0.0
    obtains = eng_unp.packs_submitted or 1
    unpack_hit_rate = eng_unp.prefetch_hits / obtains
    ips = ENGINE_BATCH * ENGINE_ITERS
    rows = [
        f"Compression engine overlap — {ENGINE_MODEL} (image {ENGINE_IMAGE}, "
        f"batch {ENGINE_BATCH}, {ENGINE_ITERS} iters)" + (" [QUICK]" if QUICK else ""),
        f"{'engine':12s} {'wall clock':>11s} {'ratio':>7s}",
        f"{'sync':12s} {t_sync:>10.3f}s {sess_sync.tracker.overall_ratio:>6.1f}x",
        f"{'async':12s} {t_async:>10.3f}s {sess_async.tracker.overall_ratio:>6.1f}x",
        f"{'async+unpack':12s} {t_unp:>10.3f}s {sess_unp.tracker.overall_ratio:>6.1f}x",
        f"{'sync+params':12s} {t_oov:>10.3f}s {sess_oov.tracker.overall_ratio:>6.1f}x",
        f"overlap speedup: {speedup:.2f}x "
        f"(packs overlapped {eng.packs_overlapped}/{eng.packs_submitted}, "
        f"prefetch hits {eng.prefetch_hits}/{eng.prefetches_scheduled})",
        f"decode-ahead speedup: {unpack_speedup:.2f}x "
        f"(unpack hits {eng_unp.prefetch_hits}/{obtains} = {unpack_hit_rate:.0%}, "
        f"hidden decompress {hidden.get('hidden_seconds', 0.0):.3f}s of "
        f"{hidden.get('seconds', 0.0):.3f}s)",
        f"out-of-core params: {oov_overhead:+.1%} overhead "
        f"({ps.storage.spill_count} spills, "
        f"peak materialized {ps.peak_materialized_nbytes >> 10} KiB, "
        f"{ps.window_switches} window switches)",
        "losses bit-identical, tracker byte-exact: yes (asserted)",
    ]
    write_report("engine_overlap", rows)
    write_bench_json(
        "engine_overlap",
        {
            "sync_wall_clock_s": metric(t_sync, "s", higher_is_better=False),
            "async_wall_clock_s": metric(t_async, "s", higher_is_better=False),
            "async_unpack_wall_clock_s": metric(t_unp, "s", higher_is_better=False),
            # Wide band: the quick-mode run is tens of milliseconds, and
            # shared CI runners add scheduler noise well above 25%.
            "sync_images_per_s": metric(
                ips / t_sync, "img/s", gate=True, tolerance=0.25 if not QUICK else 0.60
            ),
            "overlap_speedup": metric(speedup, "x"),
            "unpack_speedup": metric(unpack_speedup, "x"),
            # Deterministic at fixed iteration count: gate it tightly.
            "unpack_hit_rate": metric(
                unpack_hit_rate, "frac", gate=True, tolerance=0.10
            ),
            "unpack_hidden_fraction": metric(
                hidden.get("hidden_fraction", 0.0), "frac"
            ),
            "compression_ratio": metric(
                sess_sync.tracker.overall_ratio, "x", gate=True, tolerance=0.10
            ),
            "param_store_overhead": metric(oov_overhead, "frac", higher_is_better=False),
        },
        context={
            "model": ENGINE_MODEL,
            "image": ENGINE_IMAGE,
            "batch": ENGINE_BATCH,
            "iters": ENGINE_ITERS,
            # Per-policy-group raw/stored accounting (empty when the
            # committed config has no policy rules — honest rather than
            # omitted, so a rule-ful config change shows up in the diff).
            "memory_groups": group_summary_doc(sess_sync.tracker),
            # Hidden-vs-exposed decomposition of the decode-ahead run's
            # speculative stages (unpack-ahead / bind-window / engine-wait).
            "overlap_stages": overlap,
            "bind_windows": {
                "bind_window_bytes": ps.bind_window_bytes,
                "window_switches": ps.window_switches,
            },
        },
    )

    assert eng.packs_submitted > 0
    assert eng_unp.prefetch_hits > 0  # decode-ahead actually engaged
    assert ps.storage.spill_count > 0
    if not QUICK and (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0, f"no overlap win (speedup {speedup:.2f}x)"
        assert unpack_speedup >= speedup * 0.9, (
            f"decode-ahead lost ground: {unpack_speedup:.2f}x vs plain "
            f"async {speedup:.2f}x"
        )


@pytest.fixture(scope="module")
def act():
    rng = np.random.default_rng(4)
    return smooth_activation(rng, (8, 64, 56, 56), sigma=1.2, relu=True)


class TestCodecThroughput:
    """Microbenchmarks: the compute cost behind the overhead model."""

    def test_sz_huffman_compress(self, act, benchmark):
        comp = SZCompressor(1e-3, entropy="huffman")
        ct = benchmark(comp.compress, act)
        assert ct.compression_ratio > 4

    def test_sz_huffman_decompress(self, act, benchmark):
        comp = SZCompressor(1e-3, entropy="huffman")
        ct = comp.compress(act)
        out = benchmark(comp.decompress, ct)
        assert out.shape == act.shape

    def test_sz_zlib_compress(self, act, benchmark):
        comp = SZCompressor(1e-3, entropy="zlib")
        ct = benchmark(comp.compress, act)
        assert ct.compression_ratio > 3

    def test_jpeg_like_roundtrip(self, act, benchmark):
        codec = JpegLikeCompressor(quality=50)
        benchmark(codec.roundtrip, act)

    def test_lossless_sparse_compress(self, act, benchmark):
        codec = SparseLosslessCompressor()
        ct = benchmark(codec.compress, act)
        assert ct.compression_ratio > 1

    def test_lossless_deflate_compress(self, act, benchmark):
        codec = DeflateCompressor(level=1)
        benchmark(codec.compress, act)
