"""Benchmark regression gate: compare BENCH_*.json against a baseline.

The quick-mode benchmarks emit machine-readable metric documents
(``benchmarks/out/BENCH_<name>.json``, see ``_common.write_bench_json``).
This tool compares every *gated* metric against the matching baseline
document and fails (exit 1) when a metric regresses beyond its tolerance
band — by default 25% for throughput-class metrics, per-metric overrides
via the ``tolerance`` field.

Baselines live in two places:

* ``benchmarks/baselines/`` (committed): reference numbers from the
  development container.  Deterministic metrics (compression ratios,
  simulator throughput) are portable and tightly gated; wall-clock
  metrics carry wide bands because absolute speed is machine-dependent.
* a CI cache directory (``--baseline-dir``): CI seeds it with
  ``--update-baseline`` on the first run per runner class, then compares
  subsequent runs against numbers measured on the *same* hardware — the
  meaningful regression signal.

Gate semantics (which metrics are gated, their tolerance bands) are
taken from the *baseline* document, so an edit to the emitter cannot
silently disarm the guard judging it.  Quick-mode and full-mode numbers
are never compared against each other (the committed baselines are
quick-mode — produce comparable output with ``REPRO_BENCH_QUICK=1``);
such mismatches are skipped with a note, or fail under ``--strict``.

Usage::

    REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_overhead.py ...
    python benchmarks/check_regression.py                 # compare
    python benchmarks/check_regression.py --update-baseline
    python benchmarks/check_regression.py --baseline-dir .bench-baseline
"""

import argparse
import json
import os
import shutil
import sys
from typing import List, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_OUT_DIR = os.path.join(HERE, "out")
DEFAULT_BASELINE_DIR = os.path.join(HERE, "baselines")
DEFAULT_TOLERANCE = 0.25


def load_docs(directory: str) -> dict:
    docs = {}
    if not os.path.isdir(directory):
        return docs
    for fname in sorted(os.listdir(directory)):
        if fname.startswith("BENCH_") and fname.endswith(".json"):
            with open(os.path.join(directory, fname)) as f:
                doc = json.load(f)
            docs[doc.get("name", fname)] = doc
    return docs


def compare(current: dict, baseline: dict, default_tol: float) -> Tuple[List[str], List[str]]:
    """Returns (failures, lines) for one benchmark document pair."""
    failures: List[str] = []
    lines: List[str] = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    # A gated metric that silently disappears is exactly the kind of
    # unmeasured regression the gate exists to catch.
    for key in sorted(set(base_metrics) - set(cur_metrics)):
        if base_metrics[key].get("gate", False):
            lines.append(f"    {key:32s} {'MISSING':>12s}  (gated in baseline) REGRESSION")
            failures.append(f"{current['name']}.{key}: gated metric vanished from output")
        else:
            lines.append(f"    {key:32s} {'missing':>12s}  (ungated in baseline)")
    for key, m in sorted(cur_metrics.items()):
        value = m["value"]
        base = base_metrics.get(key)
        if base is None:
            lines.append(f"    {key:32s} {value:>12.4g}  (new metric, no baseline)")
            continue
        ref = base["value"]
        # Gate semantics come from the BASELINE document: a commit that
        # flips gate=False or loosens tolerance in the emitter cannot
        # silently disarm the guard it is being judged by.
        if not base.get("gate", m.get("gate", False)):
            lines.append(f"    {key:32s} {value:>12.4g}  vs {ref:.4g} (ungated)")
            continue
        tol = base.get("tolerance", m.get("tolerance", default_tol))
        if base.get("higher_is_better", m.get("higher_is_better", True)):
            ok = ref == 0 or value >= ref * (1.0 - tol)
            direction = "-"
        else:
            ok = ref == 0 or value <= ref * (1.0 + tol)
            direction = "+"
        delta = (value / ref - 1.0) if ref else 0.0
        status = "ok" if ok else "REGRESSION"
        if not m.get("gate", False):
            status += " (gate downgraded in current emitter)"
        lines.append(
            f"    {key:32s} {value:>12.4g}  vs {ref:.4g} "
            f"({delta:+.1%}, band {direction}{tol:.0%}) {status}"
        )
        if not ok:
            failures.append(f"{current['name']}.{key}: {value:.4g} vs baseline {ref:.4g} ({delta:+.1%})")
    return failures, lines


def update_baseline(out_dir: str, baseline_dir: str) -> int:
    os.makedirs(baseline_dir, exist_ok=True)
    count = 0
    for fname in sorted(os.listdir(out_dir)):
        if fname.startswith("BENCH_") and fname.endswith(".json"):
            shutil.copyfile(os.path.join(out_dir, fname), os.path.join(baseline_dir, fname))
            count += 1
    return count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR,
                        help="directory with the freshly produced BENCH_*.json")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        help="directory with baseline BENCH_*.json documents")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="default regression band for gated metrics (fraction)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy current results into --baseline-dir and exit")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when a benchmark has no baseline document")
    args = parser.parse_args(argv)

    if args.update_baseline:
        n = update_baseline(args.out_dir, args.baseline_dir)
        print(f"baseline updated: {n} document(s) -> {args.baseline_dir}")
        return 0 if n else 1

    current = load_docs(args.out_dir)
    baseline = load_docs(args.baseline_dir)
    if not current:
        print(f"no BENCH_*.json found in {args.out_dir}; run the quick benchmarks first")
        return 1

    failures: List[str] = []
    missing: List[str] = []
    for name, doc in current.items():
        base = baseline.get(name)
        print(f"{name} (quick={doc.get('quick')}):")
        if base is None:
            print("    no baseline document — skipped")
            missing.append(name)
            continue
        if base.get("quick") != doc.get("quick"):
            print("    baseline/current quick-mode mismatch — skipped")
            missing.append(name)
            continue
        fails, lines = compare(doc, base, args.tolerance)
        print("\n".join(lines))
        failures.extend(fails)

    print()
    if failures:
        print(f"REGRESSIONS ({len(failures)}):")
        for f in failures:
            print(f"  {f}")
        return 1
    if missing and args.strict:
        print(f"missing baselines for: {', '.join(missing)} (--strict)")
        return 1
    print(f"regression gate green ({len(current)} benchmark(s) checked"
          f"{', ' + str(len(missing)) + ' without baseline' if missing else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
