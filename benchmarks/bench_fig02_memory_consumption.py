"""Figure 2: memory consumption (weights vs activations) and top-1
accuracy of state-of-the-art CNNs at 224x224.

Regenerates the bar chart's data: per model, the weight footprint, the
saved-activation footprint at batch 32, and the published top-1 accuracy
(reference values from Table 1 / the original papers).
"""


from _common import write_report
from repro.models import (
    PAPER_REFERENCE,
    total_saved_bytes,
    weight_bytes,
)
from repro.utils import human_bytes

MODELS = ["alexnet", "vgg16", "resnet18", "resnet50"]


def fig2_rows(batch=32):
    rows = [
        f"Figure 2 — memory consumption & top-1 accuracy (batch {batch}, 224x224)",
        f"{'model':10s} {'weights':>12s} {'activations':>12s} {'act/weights':>12s} {'top-1 (paper)':>14s}",
    ]
    for name in MODELS:
        w = weight_bytes(name)
        a = total_saved_bytes(name, batch=batch)
        top1 = PAPER_REFERENCE[name].top1_baseline
        rows.append(
            f"{name:10s} {human_bytes(w):>12s} {human_bytes(a):>12s} {a / w:>11.1f}x {top1:>13.2f}%"
        )
    rows.append(
        "shape check: activations dominate weights for the deep models; AlexNet's"
        " giant FC head makes it the exception (as in the paper's Figure 2)"
    )
    return rows


def test_fig02_report(benchmark):
    rows = benchmark.pedantic(fig2_rows, rounds=1, iterations=1)
    write_report("fig02_memory_consumption", rows)
    # the figure's qualitative claim (AlexNet is weight-dominated)
    for name in ("vgg16", "resnet18", "resnet50"):
        assert total_saved_bytes(name, batch=32) > weight_bytes(name)
    assert total_saved_bytes("alexnet", batch=256) > weight_bytes("alexnet")
