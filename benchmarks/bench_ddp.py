"""Data-parallel gradient exchange: step latency, compression ratio, and
the fabric cost model validated against the real multi-process exchange.

Three records per run:

* **Step latency** at world sizes 1/2/4 (same global batch, same net) —
  the process-star exchange's overhead trajectory.  Wall-clock, so
  recorded ungated.
* **Gradient compression ratio** of the bounded-lossy uplink and the
  bit-exact broadcast — deterministic for a fixed codec/config, so
  gated against the committed baseline.
* **Measured-vs-modeled fabric cost**: the wire leg of the rank-side
  exchange wait (total wait minus the directly-measured coordinator
  reduce) against :func:`repro.simulator.star_allreduce_time` over
  ``LOCAL_PIPE`` with the *same payload sizes* — how honest the
  simulator's interconnect numbers are.  The measured side includes
  inter-rank compute skew the model deliberately ignores, so the ratio
  runs above 1 at these tiny payloads; it is recorded (ungated) to keep
  the discrepancy visible rather than assumed away.

``REPRO_BENCH_QUICK=1`` shrinks the iteration count for CI.

``--payload-scale N`` (pytest option) widens the net with a hidden
linear layer so per-step gradient payloads grow toward MB scale; the
bigger transfers amortize the per-message latency + skew terms the
model ignores, pulling the measured/modeled ratio down several-fold
(~30-40x at the default toy payloads vs ~10x at ``--payload-scale 8``
in the 1-core dev container, where rank skew never fully amortizes).
**Gating decision**: the ratio stays *ungated* at every scale — its
numerator is wall-clock pipe throughput plus scheduler skew of the
runner (machine-dependent, noisy on shared CI), unlike the
deterministic compression-ratio gates.  The JSON records it (with the
scale and per-step payload bytes in the context/metrics) so the
trajectory stays visible across runs on the same hardware.
"""

import time

import numpy as np

from _common import QUICK, metric, write_bench_json, write_report
from repro.api import CodecSpec, SessionConfig, build_session
from repro.api.config import DistributedSpec, ProfilerSpec
from repro.models.specs import ConvS, FlattenS, LinearS, MaxPoolS, ReLUS, build_network
from repro.nn import SyntheticImageDataset, batches
from repro.simulator import LOCAL_PIPE, star_allreduce_time

ITERS = 3 if QUICK else 10
BATCH = 8
IMAGE = 12
WORLD_SIZES = (1, 2, 4)
GRAD_CODEC = CodecSpec("szlike", {"error_bound": 1e-3, "mode": "abs"})


def make_net(seed=42, payload_scale=1.0):
    specs = [
        ConvS(8, 3, padding=1), ReLUS(), MaxPoolS(2),
        ConvS(16, 3, padding=1), ReLUS(),
        FlattenS(), LinearS(8),
    ]
    if payload_scale != 1.0:
        # a hidden linear layer carries the extra gradient payload
        # (~576 * 64 * scale weights); the default architecture stays
        # byte-identical so the committed ratio gates are unaffected
        hidden = max(8, int(round(64 * payload_scale)))
        specs[-1:-1] = [LinearS(hidden), ReLUS()]
    return build_network(specs, (BATCH, 3, IMAGE, IMAGE), rng=seed)


def data():
    dataset = SyntheticImageDataset(
        num_classes=8, image_size=IMAGE, signal=0.6, seed=7
    )
    return batches(dataset, BATCH, ITERS, seed=1)


def run_world(world_size, payload_scale=1.0):
    cfg = SessionConfig(
        compress_activations=False,
        profiler=ProfilerSpec(enabled=True),
        distributed=DistributedSpec(world_size=world_size, grad_codec=GRAD_CODEC)
        if world_size > 1
        else DistributedSpec(),
    )
    net = make_net(payload_scale=payload_scale)
    session = build_session(net, cfg)
    t0 = time.perf_counter()
    session.train(data())
    wall = time.perf_counter() - t0
    stats = session.grad_exchange_stats if world_size > 1 else None
    session.close()
    snap = session.profiler.snapshot() if session.profiler is not None else {}
    return {
        "step_ms": 1e3 * wall / ITERS,
        "stats": stats,
        "snapshot": snap,
        "losses": list(session.history.losses),
    }


def fabric_legs_ms(stats, snapshot, world_size):
    """Decompose the exchange into (modeled wire, measured reduce) ms.

    The rank-side exchange wait is coordinator-reduce + wire + skew;
    the reduce is measured directly (``grad-reduce`` stage), so the
    *wire* residual is what validates ``star_allreduce_time`` over
    ``LOCAL_PIPE`` at the same payload sizes.
    """
    steps = stats["steps"]
    uplink = stats["per_rank"][0]["compressed_bytes"] / steps
    downlink = stats["downlink"]["compressed_bytes"] / steps
    wire_model = 1e3 * star_allreduce_time(uplink, downlink, world_size, LOCAL_PIPE)
    reduce_meas = 1e3 * snapshot.get("grad-reduce", {}).get("seconds", 0.0) / steps
    return wire_model, reduce_meas


def measured_exchange_ms(snapshot):
    """Mean rank-side blocking time per exchange (send + wait + recv)."""
    rec = snapshot.get("grad-exchange")
    if not rec or not rec["calls"]:
        return 0.0
    return 1e3 * rec["seconds"] / rec["calls"]


def test_ddp_report(benchmark, request):
    payload_scale = float(request.config.getoption("--payload-scale"))
    results = benchmark.pedantic(
        lambda: {w: run_world(w, payload_scale) for w in WORLD_SIZES},
        rounds=1,
        iterations=1,
    )

    rows = [
        "Data-parallel exchange — step latency / compression / fabric model",
        f"(net: 2-conv stack, batch {BATCH}, {ITERS} iters, "
        f"grad codec szlike abs 1e-3, payload scale {payload_scale:g})",
        f"{'world':>5s} {'step ms':>9s} {'uplink x':>9s} {'downlink x':>11s} "
        f"{'wire ms':>8s} {'model ms':>9s} {'meas/model':>11s}",
        "(wire ms = rank exchange wait minus coordinator reduce: pipe "
        "transfer + inter-rank skew; model ms = star_allreduce_time "
        "over LOCAL_PIPE at the same payload sizes, reduce excluded)",
    ]
    metrics = {}
    for w in WORLD_SIZES:
        r = results[w]
        metrics[f"step_latency_ms_ws{w}"] = metric(
            r["step_ms"], "ms", higher_is_better=False
        )
        if w == 1:
            rows.append(f"{w:>5d} {r['step_ms']:>9.2f} {'-':>9s} {'-':>11s} "
                        f"{'-':>8s} {'-':>9s} {'-':>11s}")
            continue
        stats = r["stats"]
        up_ratio = stats["per_rank"][0]["ratio"]
        down_ratio = stats["downlink"]["ratio"]
        uplink_bytes = stats["per_rank"][0]["compressed_bytes"] / stats["steps"]
        meas = measured_exchange_ms(r["snapshot"])
        wire_model, reduce_meas = fabric_legs_ms(stats, r["snapshot"], w)
        wire_meas = max(meas - reduce_meas, 0.0)
        ratio = wire_meas / wire_model if wire_model > 0 else float("inf")
        # deterministic for a fixed codec/data stream: a stable gate —
        # but only at the default scale the committed baseline measured
        metrics[f"grad_uplink_ratio_ws{w}"] = metric(
            up_ratio, "x", gate=payload_scale == 1.0, tolerance=0.15
        )
        metrics[f"uplink_bytes_per_step_ws{w}"] = metric(uplink_bytes, "B")
        metrics[f"grad_downlink_ratio_ws{w}"] = metric(down_ratio, "x")
        metrics[f"fabric_wire_measured_vs_modeled_ws{w}"] = metric(
            ratio, "x", higher_is_better=False
        )
        rows.append(
            f"{w:>5d} {r['step_ms']:>9.2f} {up_ratio:>8.2f}x {down_ratio:>10.2f}x "
            f"{wire_meas:>8.3f} {wire_model:>9.3f} {ratio:>10.1f}x"
        )

    # the exchange must not change what is learned: same data, same net,
    # losses agree with the single-worker run within the grad bound
    drift = max(
        abs(a - b) for a, b in zip(results[1]["losses"], results[2]["losses"])
    )
    rows.append(f"max |loss(ws2) - loss(ws1)| over {ITERS} iters: {drift:.2e}")
    assert drift < 0.05, "bounded-lossy exchange drifted beyond the bound"
    assert np.isfinite(results[4]["losses"][-1])

    write_report("ddp", rows)
    write_bench_json(
        "ddp",
        metrics,
        context={
            "iters": ITERS,
            "batch": BATCH,
            "world_sizes": list(WORLD_SIZES),
            "payload_scale": payload_scale,
            "grad_codec": GRAD_CODEC.to_dict(),
            "link": {
                "name": LOCAL_PIPE.name,
                "bandwidth": LOCAL_PIPE.bandwidth,
                "latency": LOCAL_PIPE.latency,
            },
        },
    )
