"""Figure 11: ResNet-50 training throughput (images/s) vs batch size N,
single V100 and 4-node x 4-GPU, baseline vs our framework.

Alongside the analytic simulator sweep, a *measured* engine axis runs a
small compressed training stack for real and reports images/s with the
sync versus the async (overlapped pack + prefetch) compression engine.
"""

import numpy as np

from _common import (
    ENGINE_BATCH,
    ENGINE_MODEL,
    QUICK,
    group_summary_doc,
    metric,
    timed_engine_run,
    write_bench_json,
    write_report,
)
from repro.simulator import BASELINE, TrainingSimulator, V100, our_policy

BATCHES = [8, 16, 32, 64, 128, 256]

#: measured engine axis: the shared _common engine scale, both engines
MEASURED_ITERS = 2 if QUICK else 4


def measure_engine(engine):
    dt, losses, compressed = timed_engine_run(engine, iters=MEASURED_ITERS)
    return ENGINE_BATCH * MEASURED_ITERS / dt, losses, compressed


def sweep_all():
    base = TrainingSimulator("resnet50", V100, policy=BASELINE)
    ours = TrainingSimulator("resnet50", V100, policy=our_policy(11.0))
    out = {}
    for workers, tag in ((1, "1 GPU"), (16, "4 nodes x 4 GPUs")):
        out[tag] = {
            "base": {b: base.simulate(b, workers=workers) for b in BATCHES},
            "ours": {b: ours.simulate(b, workers=workers) for b in BATCHES},
        }
    out["max_batch"] = (base.max_batch(), ours.max_batch())
    return out


def test_fig11_report(benchmark):
    data = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    rows = ["Figure 11 — ResNet-50 throughput vs batch size (simulated V100)"]
    for tag in ("1 GPU", "4 nodes x 4 GPUs"):
        rows.append(f"-- {tag} --")
        rows.append(f"{'N':>5s} {'baseline img/s':>15s} {'ours img/s':>12s} {'fits (base/ours)':>17s}")
        for b in BATCHES:
            rb = data[tag]["base"][b]
            ro = data[tag]["ours"][b]
            rows.append(
                f"{b:>5d} {rb.images_per_s:>15.0f} {ro.images_per_s:>12.0f} "
                f"{str(rb.fits):>8s}/{str(ro.fits):<8s}"
            )
    mb_b, mb_o = data["max_batch"]
    rows += [
        f"max batch per GPU: baseline {mb_b}, ours {mb_o} ({mb_o / mb_b:.2f}x headroom)",
        "paper shape: throughput rises with N for both cases; the framework",
        "extends the feasible batch range — matched.",
    ]

    # -- measured engine axis: sync vs async on a real (CPU-scale) stack --
    ips_sync, losses_sync, sess_sync = measure_engine("sync")
    ips_async, losses_async, _ = measure_engine("async")
    np.testing.assert_array_equal(losses_sync, losses_async)  # same bits
    rows += [
        f"-- measured engine axis ({ENGINE_MODEL} scaled, batch {ENGINE_BATCH}) --",
        f"{'engine':8s} {'img/s':>8s}",
        f"{'sync':8s} {ips_sync:>8.1f}",
        f"{'async':8s} {ips_async:>8.1f}",
        f"async/sync throughput: {ips_async / ips_sync:.2f}x "
        "(losses bit-identical, asserted)",
    ]
    write_report("fig11_throughput", rows)
    write_bench_json(
        "fig11_throughput",
        {
            # Simulator numbers are analytic and deterministic: a tight
            # gate that catches accidental cost-model changes.
            "sim_1gpu_batch64_img_per_s": metric(
                data["1 GPU"]["ours"][64].images_per_s, "img/s", gate=True, tolerance=0.01
            ),
            "sim_max_batch_headroom": metric(
                mb_o / mb_b, "x", gate=True, tolerance=0.01
            ),
            "measured_sync_img_per_s": metric(
                # Quick-mode measurement is ~2 tiny iterations: wide band.
                ips_sync, "img/s", gate=True, tolerance=0.25 if not QUICK else 0.60
            ),
            "measured_async_img_per_s": metric(ips_async, "img/s"),
            "async_over_sync": metric(ips_async / ips_sync, "x"),
        },
        context={
            "model": ENGINE_MODEL,
            "batch": ENGINE_BATCH,
            "iters": MEASURED_ITERS,
            "memory_groups": group_summary_doc(sess_sync.tracker),
        },
    )
    assert ips_sync > 0 and ips_async > 0

    one = data["1 GPU"]["base"]
    assert one[256].images_per_s > one[8].images_per_s  # rising curve
    multi = data["4 nodes x 4 GPUs"]["base"]
    assert multi[256].images_per_s > multi[8].images_per_s
    assert mb_o > 1.5 * mb_b
