"""Table 1: per-model conv-activation size and compression ratio.

Activation sizes come from exact shape arithmetic at 224x224 / batch 256
(no allocation).  Compression ratios are measured by running the actual
compressor on realistic per-layer activation samples (band-limited
post-ReLU fields at each layer's true shape, small batch) with the
adaptive controller's operating-point error bound, then weighting each
layer by its full-scale byte share.
"""

import numpy as np
import pytest

from _common import smooth_activation, write_report
from repro.compression import SZCompressor
from repro.models import (
    PAPER_REFERENCE,
    full_model_specs,
    walk_shapes,
)
from repro.utils import human_bytes

MODELS = ["alexnet", "vgg16", "resnet18", "resnet50"]
SAMPLE_BATCH = 2
#: the adaptive controller's typical operating point observed in the
#: Figure 10 runs: eb ~= 5% of the activation's standard deviation
REL_EB = 0.05


def measured_model_ratio(name, comp, rng):
    """Byte-weighted compression ratio over every conv layer."""
    reports = [r for r in walk_shapes(full_model_specs(name), (256, 3, 224, 224)) if r.is_conv]
    raw_total = 0.0
    stored_total = 0.0
    for i, r in enumerate(reports):
        _, c, h, w = r.in_shape
        # first layer sees the raw image (dense); later layers post-ReLU,
        # with sparsity rising with depth as in real CNNs (conv5 of
        # AlexNet runs around R ~= 0.25-0.4)
        x = smooth_activation(rng, (SAMPLE_BATCH, c, h, w), sigma=1.2, relu=False)
        if i > 0:
            x = np.maximum(x - min(0.1 * i, 0.5), 0)
        eb = REL_EB * float(x.std() + 1e-12)
        ct = comp.compress(x, error_bound=eb)
        raw_total += r.saved_bytes
        stored_total += r.saved_bytes / ct.compression_ratio
    return raw_total / stored_total


def test_table1_report(benchmark):
    rng = np.random.default_rng(21)
    comp = SZCompressor(entropy="huffman", zero_filter=True)
    results = {}

    def sweep():
        for name in MODELS:
            results[name] = measured_model_ratio(name, comp, rng)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        "Table 1 — conv activation size (batch 256) and compression ratio",
        f"{'model':10s} {'act size (ours)':>16s} {'act size (paper)':>17s} "
        f"{'ratio (ours)':>13s} {'ratio (paper)':>14s}",
    ]
    from repro.models import conv_activation_bytes

    for name in MODELS:
        mine = conv_activation_bytes(name, 256)
        ref = PAPER_REFERENCE[name]
        rows.append(
            f"{name:10s} {human_bytes(mine):>16s} {human_bytes(ref.conv_act_bytes_baseline):>17s} "
            f"{results[name]:>12.1f}x {ref.compression_ratio:>13.1f}x"
        )
    rows += [
        "paper accuracy deltas (ImageNet): <= 0.31% — our scaled-training check",
        "is in fig10_training_curve (delta ~0 at CPU scale).",
        "shape: error-bounded lossy gives ~10x+, far above the ~2x lossless",
        "ceiling and above the ~7x JPEG-ACT baseline (see bench_overhead).",
    ]
    write_report("table1_compression_ratio", rows)
    for name in MODELS:
        assert results[name] > 6.0  # way beyond lossless/JPEG class
        assert results[name] == pytest.approx(PAPER_REFERENCE[name].compression_ratio, rel=0.6)
