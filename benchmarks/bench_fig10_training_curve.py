"""Figure 10: baseline vs compressed-training accuracy curves plus the
compression-ratio-vs-iteration curve (scaled AlexNet, adaptive scheme).
"""

import numpy as np
import pytest

from _common import write_report
from repro.core import AdaptiveConfig, CompressedTraining
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERS = 150


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(num_classes=8, image_size=32, channels=3, signal=0.4, seed=7)


def run(dataset, compress, seed=1):
    net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=42 + seed)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    tr = Trainer(net, opt)
    sess = None
    if compress:
        sess = CompressedTraining(
            net, opt, config=AdaptiveConfig(W=25, warmup_iterations=3)
        ).attach(tr)
    tr.train(batches(dataset, 32, ITERS, seed=seed))
    acc = tr.evaluate(*dataset.fixed_eval_set(512))
    return tr, sess, acc


def test_fig10_report(dataset, benchmark):
    state = {}

    def experiment():
        state["base"] = run(dataset, compress=False)
        state["comp"] = run(dataset, compress=True)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    tr_b, _, acc_b = state["base"]
    tr_c, sess, acc_c = state["comp"]

    curve_b = tr_b.history.smoothed_accuracy(20)
    curve_c = tr_c.history.smoothed_accuracy(20)
    ratios = np.array(sess.ratio_history())
    k = max(1, len(curve_b) // 10)
    rows = [
        f"Figure 10 — training curves, baseline vs framework ({ITERS} iterations)",
        f"{'iter':>6s} {'baseline acc':>13s} {'compressed acc':>15s} {'compr. ratio':>13s}",
    ]
    for i in range(0, len(curve_b), k):
        rows.append(
            f"{i:>6d} {curve_b[i]:>13.3f} {curve_c[min(i, len(curve_c) - 1)]:>15.3f} "
            f"{ratios[min(i, len(ratios) - 1)]:>12.1f}x"
        )
    rows += [
        f"final eval accuracy: baseline {acc_b:.3f} vs compressed {acc_c:.3f} "
        f"(delta {acc_c - acc_b:+.3f}; paper: +-0.3% on ImageNet)",
        f"overall activation compression ratio: {sess.tracker.overall_ratio:.1f}x",
        f"per-layer error bounds: " + ", ".join(f"{k2}={v:.3g}" for k2, v in sess.error_bounds.items()),
        "paper shape: curves overlap, ratio stabilizes after early iterations — matched",
    ]
    write_report("fig10_training_curve", rows)
    assert acc_c >= acc_b - 0.05
    assert sess.tracker.overall_ratio > 4
    # ratio curve settles into a band once warm-up ends (at CPU scale the
    # task converges fully, so momentum — and with it the bound — keeps
    # drifting down slowly; the paper's ImageNet runs plateau instead)
    late = ratios[len(ratios) // 2 :]
    assert late.min() > 3.0
    assert late.std() / late.mean() < 0.35
