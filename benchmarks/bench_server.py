"""Multi-tenant session server: N tenants x M steps over one pool.

Measures the server subsystem end to end: a fleet of training tenants
(plus one uncompressed inference tenant) admitted from declarative
specs, stepped round-robin by the shared scheduler while their arenas
compete inside ONE :class:`~repro.core.arena.ArenaPool` budget sized
*below* the sum of tenant budgets, and their codecs share one codebook
segment.

Records per run:

* **Step latency p50/p99** (enqueue -> done, across every tenant step)
  and fleet throughput — wall-clock, gated only with a wide band (CI
  compares per-runner cached baselines; absolute speed is
  machine-dependent).
* **Deterministic counters** — steps executed, tenants admitted, the
  admission rejection for the oversubscribing extra tenant, and
  cross-tenant codebook adoptions.  ``workers=1`` makes the drain order
  (and therefore every counter) deterministic, so these gate tightly.
* **Pool pressure** — resident/spilled bytes and forced cross-tenant
  spills under the shared budget (context, ungated: byte-level spill
  timing shifts with codec output sizes).

Finally asserts the determinism contract the server's sharing story
rests on: every training tenant's hosted losses are bit-identical to
the same spec run standalone through ``build_session``.

``REPRO_BENCH_QUICK=1`` shrinks the fleet and step count for CI.
"""

import time

import numpy as np

from _common import QUICK, latency_metrics, metric, write_bench_json, write_report
from repro.server import AdmissionError, SessionServer, load_server_config, run_standalone

STEPS = 4 if QUICK else 12
IMAGE = 12 if QUICK else 16
MODELS = ("alexnet", "alexnet", "alexnet") if QUICK else ("alexnet", "vgg16", "resnet18")
#: per-tenant declared arena budget; the pool is sized to half the sum
#: so the fleet *must* share (declared 3x, admitted under overcommit)
TENANT_BUDGET = 1 << 20


def fleet_config():
    tenants = [
        {
            "name": f"train-{i}-{model}",
            "kind": "train",
            "model": model,
            "image_size": IMAGE,
            "batch_size": 4,
            "seed": 100 + i,
            "session": {
                "codec": {"options": {"codebook_cache": True}},
                "storage": {"activations": "arena", "budget_bytes": TENANT_BUDGET},
            },
        }
        for i, model in enumerate(MODELS)
    ]
    tenants.append(
        {
            "name": "infer-0",
            "kind": "infer",
            "model": "alexnet",
            "image_size": IMAGE,
            "batch_size": 8,
            "seed": 200,
            "session": {"compress_activations": False},
        }
    )
    return {
        "server": {
            # Half the declared train budgets: tenants must share.
            "pool_budget_bytes": (len(MODELS) * TENANT_BUDGET) // 2,
            "overcommit": float(len(MODELS)),
            "admission": "reject",
            "workers": 1,
            "max_batch_requests": 1,
            "queue_depth": 4 * STEPS + 8,
        },
        "tenants": tenants,
    }


def run_fleet():
    import json

    spec, tenants = load_server_config(json.dumps(fleet_config()))
    with SessionServer(spec) as server:
        for t in tenants:
            server.admit(t)
        # One tenant past the overcommit line: must be rejected (the
        # admission counter below gates this deterministically).
        rejected = 0
        try:
            server.admit(
                {
                    "name": "over-budget",
                    "model": "alexnet",
                    "image_size": IMAGE,
                    "batch_size": 4,
                    "seed": 999,
                    "session": {
                        "storage": {
                            "activations": "arena",
                            "budget_bytes": len(MODELS) * TENANT_BUDGET,
                        }
                    },
                }
            )
        except AdmissionError:
            rejected = 1

        # Round-robin submission at step granularity (what server.run
        # does), but holding the tickets so the fleet-wide latency
        # sample set comes from the real enqueue->done times.
        names = [t.name for t in tenants]
        t0 = time.perf_counter()
        tickets = {n: [] for n in names}
        for _ in range(STEPS):
            for n in names:
                tickets[n].extend(server.submit(n, 1))
        results = {n: [tk.wait() for tk in ts] for n, ts in tickets.items()}
        wall = time.perf_counter() - t0
        latencies = [tk.latency_seconds for ts in tickets.values() for tk in ts]
        stats = server.stats()
    return tenants, results, stats, wall, rejected, latencies


def test_server_report(benchmark):
    out = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
    tenants, results, stats, wall, rejected, latencies = out

    total_steps = sum(len(r) for r in results.values())
    for name, row in stats["tenants"].items():
        for key in ("latency_p50_ms", "latency_p99_ms"):
            assert key in row, f"{name}: scheduler recorded no latencies"

    adoptions = 0
    for row in stats["tenants"].values():
        cache = row.get("codebook_cache") or {}
        adoptions += sum((cache.get("adoptions_from") or {}).values())

    pool = stats["pool"]
    rows = [
        f"fleet: {len(tenants)} tenants x {STEPS} steps (workers=1), "
        f"pool {pool['budget_bytes']} B vs {pool['declared_bytes']} B declared",
        f"wall: {wall:.2f}s  ({total_steps / wall:.2f} steps/s)",
        f"pool: in-mem {pool['in_memory_nbytes']} B, spilled {pool['spilled_nbytes']} B, "
        f"forced spills {pool['forced_spill_count']} ({pool['forced_spill_bytes']} B)",
        f"codebook adoptions across tenants: {adoptions}",
        f"admission: {stats['admission']['admitted']} admitted, "
        f"{stats['admission']['rejected']} rejected",
    ]
    for name in sorted(stats["tenants"]):
        row = stats["tenants"][name]
        rows.append(
            f"  {name:18s} steps={row['steps_done']:3d} "
            f"p50={row['latency_p50_ms']:8.1f}ms p99={row['latency_p99_ms']:8.1f}ms"
        )

    # Determinism contract: hosted == standalone, bit for bit.
    for t in tenants:
        if t.kind != "train":
            continue
        hosted = [r["loss"] for r in results[t.name]]
        alone = [r["loss"] for r in run_standalone(t, STEPS)]
        assert hosted == alone, f"{t.name}: hosted losses diverged from standalone"
        assert np.isfinite(hosted[-1])
    rows.append("hosted training losses are bit-identical to standalone sessions")

    metrics = {
        # wall-clock: wide bands (per-runner CI baselines make them useful)
        **latency_metrics(latencies, prefix="step_latency", gate=True, tolerance=1.5),
        "steps_per_second": metric(total_steps / wall, "steps/s"),
        # deterministic with workers=1: tight gates
        "steps_executed": metric(total_steps, "steps", gate=True, tolerance=0.0),
        "tenants_admitted": metric(
            stats["admission"]["admitted"], "tenants", gate=True, tolerance=0.0
        ),
        "admission_rejected": metric(rejected, "tenants", gate=True, tolerance=0.0),
        "codebook_adoptions": metric(adoptions, "books", gate=True, tolerance=0.5),
        # pool pressure: recorded for the trajectory, ungated
        "pool_forced_spills": metric(pool["forced_spill_count"], "spills"),
        "pool_spilled_bytes": metric(pool["spilled_nbytes"], "B"),
    }

    write_report("server", rows)
    write_bench_json(
        "server",
        metrics,
        context={
            "steps": STEPS,
            "models": list(MODELS),
            "image_size": IMAGE,
            "tenant_budget_bytes": TENANT_BUDGET,
            "pool": pool,
            "admission": {
                k: v for k, v in stats["admission"].items() if k != "decisions"
            },
        },
    )
