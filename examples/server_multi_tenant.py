"""Multi-tenant session server: one memory budget, many sessions.

Hosts the committed fleet ``configs/server_tenants.json`` — three
training tenants (alexnet / vgg16 / resnet18, each with its own codec
and arena budget) plus one uncompressed inference tenant — over ONE
shared 4 MB :class:`~repro.core.arena.ArenaPool` budget, although the
tenants *declare* 8 MB between them.  The pool's fair cross-tenant
spill keeps every tenant inside the shared budget; the shared codebook
segment lets later tenants adopt the Huffman books earlier tenants
built; and the step scheduler interleaves everyone's steps round-robin
over a small worker pool.

The punchline is the determinism contract: after N concurrent steps,
every training tenant's losses are bit-identical to running the same
spec standalone through ``build_session`` — sharing moves bytes and
amortizes codebook builds, but never changes results.

    python examples/server_multi_tenant.py
"""

import os

from repro.server import SessionServer, load_server_config, run_standalone, serve

STEPS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "10"))
FLEET = os.path.join(os.path.dirname(__file__), "configs", "server_tenants.json")


def main():
    spec, tenants = load_server_config(FLEET)
    declared = sum(t.declared_bytes for t in tenants)
    print(
        f"fleet: {len(tenants)} tenants declaring {declared >> 20} MB over a "
        f"{spec.pool_budget_bytes >> 20} MB pool (overcommit {spec.overcommit}x)\n"
    )

    with SessionServer(spec) as server:
        for t in tenants:
            handle = server.admit(t)
            print(f"  admit {t.name:15s} [{t.kind}] -> {handle.state}")

        # The HTTP endpoint runs alongside; poke it like an operator would.
        with serve(server) as endpoint:
            print(f"\nmetrics endpoint: {endpoint.url}/stats")
            results = server.run(steps=STEPS)

        stats = server.stats()
        pool = stats["pool"]
        print(f"\nafter {STEPS} steps/tenant:")
        print(
            f"  pool: {pool['in_memory_nbytes']} bytes resident of "
            f"{pool['budget_bytes']} budget, {pool['spilled_nbytes']} spilled, "
            f"{pool['forced_spill_count']} cross-tenant forced spills"
        )
        for name, row in stats["tenants"].items():
            line = f"  {name:15s} steps={row['steps_done']}"
            if "latency_p50_ms" in row:
                line += (
                    f" p50={row['latency_p50_ms']:.1f}ms"
                    f" p99={row['latency_p99_ms']:.1f}ms"
                )
            cache = row.get("codebook_cache") or {}
            if cache.get("adoptions_from"):
                line += f" adopted-from={cache['adoptions_from']}"
            print(line)

        # Determinism: hosted == standalone, bit for bit.
        for t in tenants:
            if t.kind != "train":
                continue
            hosted = [r["loss"] for r in results[t.name]]
            alone = [r["loss"] for r in run_standalone(t, STEPS)]
            assert hosted == alone, f"{t.name}: hosted diverged from standalone"
        print("\ntraining tenants are bit-identical to standalone sessions")


if __name__ == "__main__":
    main()
