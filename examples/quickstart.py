"""Quickstart: train a small CNN with adaptive activation compression.

Runs the same workload twice — plain baseline training and training
through the declarative front door (:func:`repro.api.build_session`) —
and reports accuracy plus the activation-memory reduction the
compressor delivered.

The whole framework is one config object::

    from repro.api import SessionConfig, AdaptiveSpec, build_session

    cfg = SessionConfig(adaptive=AdaptiveSpec(W=20, warmup_iterations=3))
    with build_session(network, cfg) as session:
        session.train(batches(dataset, 32, iterations, seed=1))
        print(session.tracker.overall_ratio)

``cfg.to_json(path)`` commits the exact run to a file;
``SessionConfig.from_json(path)`` reproduces it bit-for-bit (see
``examples/mixed_policy_session.py`` for per-layer policy rules).

    python examples/quickstart.py

Environment: ``REPRO_EXAMPLE_ITERS`` overrides the iteration count
(CI smoke runs use 2).
"""

import os

from repro.api import AdaptiveSpec, SessionConfig, build_session
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "80"))
BATCH = 32


def main():
    dataset = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)
    eval_x, eval_y = dataset.fixed_eval_set(384)

    print(f"training scaled AlexNet for {ITERATIONS} iterations (batch {BATCH})...")
    base_net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=42)
    base_trainer = Trainer(base_net, SGD(base_net.parameters(), lr=0.01, momentum=0.9,
                                         weight_decay=5e-4))
    base_trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))
    base_acc = base_trainer.evaluate(eval_x, eval_y)

    # W is scaled down from the paper's 1000 because we run 80
    # iterations, not 200k; everything else is the paper's defaults.
    cfg = SessionConfig(adaptive=AdaptiveSpec(W=20, warmup_iterations=3))
    cfg.optimizer.weight_decay = 5e-4
    net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=42)
    with build_session(net, cfg) as session:
        session.train(batches(dataset, BATCH, ITERATIONS, seed=1))
        comp_acc = session.evaluate(eval_x, eval_y)

        print(f"\nbaseline   accuracy: {base_acc:.3f}")
        print(f"compressed accuracy: {comp_acc:.3f}")
        print(f"activation memory reduction: {session.tracker.overall_ratio:.1f}x")
        print("\nper-layer adaptive error bounds (Eq. 9):")
        for name, eb in sorted(session.error_bounds.items()):
            ratio = session.compression_ratios.get(name, float("nan"))
            print(f"  {name:24s} eb = {eb:9.3e}   ratio = {ratio:5.1f}x")


if __name__ == "__main__":
    main()
