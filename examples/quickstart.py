"""Quickstart: train a small CNN with adaptive activation compression.

Runs the same workload twice — plain baseline training and training with
the paper's framework installed — and reports accuracy plus the
activation-memory reduction the compressor delivered.

    python examples/quickstart.py
"""

from repro.core import AdaptiveConfig, CompressedTraining
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERATIONS = 80
BATCH = 32


def make_trainer(seed=42, compress=False):
    net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=seed)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    trainer = Trainer(net, opt)
    session = None
    if compress:
        # W is scaled down from the paper's 1000 because we run 80
        # iterations, not 200k; everything else is the paper's defaults.
        session = CompressedTraining(
            net, opt, config=AdaptiveConfig(W=20, warmup_iterations=3)
        ).attach(trainer)
    return trainer, session


def main():
    dataset = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)
    eval_x, eval_y = dataset.fixed_eval_set(384)

    print(f"training scaled AlexNet for {ITERATIONS} iterations (batch {BATCH})...")
    base_trainer, _ = make_trainer(compress=False)
    base_trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))
    base_acc = base_trainer.evaluate(eval_x, eval_y)

    comp_trainer, session = make_trainer(compress=True)
    comp_trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))
    comp_acc = comp_trainer.evaluate(eval_x, eval_y)

    print(f"\nbaseline   accuracy: {base_acc:.3f}")
    print(f"compressed accuracy: {comp_acc:.3f}")
    print(f"activation memory reduction: {session.tracker.overall_ratio:.1f}x")
    print("\nper-layer adaptive error bounds (Eq. 9):")
    for name, eb in sorted(session.error_bounds.items()):
        ratio = session.compression_ratios.get(name, float("nan"))
        print(f"  {name:24s} eb = {eb:9.3e}   ratio = {ratio:5.1f}x")


if __name__ == "__main__":
    main()
