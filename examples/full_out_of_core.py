"""Full out-of-core training: activations AND parameters beyond memory.

The previous demos made *activations* physically out-of-core
(``arena_out_of_core.py``); this one completes the picture.  A
VGG-scale model trains with:

* compressed activations in a budgeted :class:`ByteArena` (spill-to-disk
  overflow, async prefetch before backward), and
* weights + SGD momentum in a :class:`ParamStore` whose arena budget is
  deliberately **smaller than the model's parameter footprint** — so the
  full training state can never be resident at once.  Weights are
  materialized just-in-time around each layer's forward/backward/update,
  and the async engine's reverse-order prefetch stages the upcoming
  layers' spilled parameter bytes alongside the spilled activations.

The result is bit-identical to resident training (the ParamStore
round-trip is lossless by construction) — the only cost is wall clock.

    python examples/full_out_of_core.py
"""

import os

from repro.core import AdaptiveConfig, ByteArena, CompressedTraining, ParamStore
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "20"))
BATCH = 16
ACT_BUDGET = 64 << 10  # 64 KiB for packed activations
PARAM_BUDGET = 64 << 10  # in-memory ceiling for weights + momentum


def main():
    dataset = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)
    net = build_scaled_model("vgg16", num_classes=8, image_size=32, rng=42)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    trainer = Trainer(net, opt)

    param_bytes = sum(p.size * 4 for p in net.parameters())
    state_bytes = 2 * param_bytes  # weights + momentum slots
    assert PARAM_BUDGET < param_bytes, "demo wants a budget below the footprint"

    store = ParamStore(budget_bytes=PARAM_BUDGET)
    with ByteArena(budget_bytes=ACT_BUDGET) as act_arena:
        session = CompressedTraining(
            net,
            opt,
            compressor="szlike",
            config=AdaptiveConfig(W=10, warmup_iterations=3),
            storage=act_arena,
            param_storage=store,
            engine="async",
        ).attach(trainer)

        print(
            f"model: vgg16-scaled, {param_bytes >> 10} KiB of weights "
            f"({state_bytes >> 10} KiB with momentum) under a "
            f"{PARAM_BUDGET >> 10} KiB parameter budget; "
            f"{ACT_BUDGET >> 10} KiB activation budget"
        )
        print(f"training {ITERATIONS} iterations (batch {BATCH})...")
        trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))

        arena = store.storage
        print(f"\nfinal loss: {trainer.history.losses[-1]:.3f}")
        print(
            f"activation memory reduction: {session.tracker.overall_ratio:.1f}x "
            "(physical serialized bytes)"
        )
        largest = max(p.size * 4 for p in net.parameters())
        print(
            f"param arena: peak in-memory {arena.peak_in_memory_nbytes >> 10} KiB "
            f"(FIFO budget {PARAM_BUDGET >> 10} KiB + staging cap "
            f"{PARAM_BUDGET >> 10} KiB + largest entry {largest >> 10} KiB transient), "
            f"{arena.spill_count} spills, {arena.prefetch_count} staged back"
        )
        assert arena.peak_in_memory_nbytes <= 2 * PARAM_BUDGET + 2 * largest
        print(
            f"param store: peak materialized {store.peak_materialized_nbytes >> 10} KiB "
            f"of {state_bytes >> 10} KiB total state "
            f"({store.fetch_count} fetches, {store.writeback_count} write-backs)"
        )
        print(
            f"engine: {session.engine.packs_overlapped}/{session.engine.packs_submitted} "
            f"packs overlapped, {session.engine.param_stages_scheduled} param stagings"
        )
        peak_resident = store.peak_materialized_nbytes + arena.peak_in_memory_nbytes
        print(
            f"peak resident training state: {peak_resident >> 10} KiB "
            f"vs {state_bytes >> 10} KiB resident baseline "
            f"({state_bytes / peak_resident:.1f}x reduction)"
        )
        assert store.peak_materialized_nbytes < param_bytes
        trainer.close()  # stops workers, restores resident weights
        assert len(arena) == 0, "all parameter entries released"


if __name__ == "__main__":
    main()
