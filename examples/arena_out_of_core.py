"""Out-of-core training: compressed activations in a budgeted byte arena.

Trains the quickstart CNN with the paper's adaptive compression, but
holds every packed activation as a *serialized byte string* in a
:class:`ByteArena` with a deliberately tight in-memory budget — overflow
spills to disk and is read back when backpropagation needs it.  The
memory tracker therefore reports physically real bytes (the exact
serialized lengths), not accounting estimates, and the run demonstrates
the chunked parallel codec on the pack/unpack hot path.

With ``engine="async"`` the compression pipeline overlaps training:
packing runs on a worker pool while the next layer's forward computes,
and spilled bytes are prefetched from disk in reverse pack order before
backpropagation asks for them — with bit-identical results to the sync
engine.

    python examples/arena_out_of_core.py
"""

import os

from repro.compression import ChunkedCodec, get_codec
from repro.core import AdaptiveConfig, ByteArena, CompressedTraining
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "40"))
BATCH = 32
BUDGET = 96 << 10  # 96 KiB in-memory arena: small enough to force spills


def main():
    dataset = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)
    net = build_scaled_model("alexnet", num_classes=8, image_size=32, rng=42)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    trainer = Trainer(net, opt)

    codec = ChunkedCodec(
        get_codec("szlike", entropy="zlib", zero_filter=True),
        workers=4,
        min_chunk_nbytes=1 << 18,
    )
    with ByteArena(budget_bytes=BUDGET) as arena:
        session = CompressedTraining(
            net, opt,
            compressor=codec,
            config=AdaptiveConfig(W=10, warmup_iterations=3),
            storage=arena,
            engine="async",  # overlap packing; prefetch spills for backward
        ).attach(trainer)

        print(f"training with a {BUDGET >> 10} KiB arena budget "
              f"for {ITERATIONS} iterations (batch {BATCH})...")
        trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))
        trainer.close()  # stop the engine's workers

        print(f"\nfinal loss: {trainer.history.losses[-1]:.3f}")
        print(f"activation memory reduction: {session.tracker.overall_ratio:.1f}x "
              "(physical serialized bytes)")
        print(f"arena peak in-memory: {arena.peak_in_memory_nbytes >> 10} KiB "
              f"(budget {BUDGET >> 10} KiB)")
        print(f"arena peak incl. disk: {arena.peak_total_nbytes >> 10} KiB, "
              f"spilled {arena.spill_count} activations "
              f"({arena.prefetch_count} prefetched back for backward)")
        print(f"engine: {session.engine.packs_overlapped}/"
              f"{session.engine.packs_submitted} packs overlapped, "
              f"{session.engine.prefetch_hits} prefetch hits")
        assert len(arena) == 0, "all packed activations released"


if __name__ == "__main__":
    main()
