"""Data-parallel training with compressed gradient exchange.

Builds a 2-rank session straight from the committed
``examples/configs/ddp_vgg.json`` — the whole distributed setup is the
``distributed`` section of the one config file::

    "distributed": {
        "world_size": 2,
        "grad_codec": {"options": {"error_bound": 0.001, "mode": "abs"}},
        "rank_arena_budget": 4194304
    }

``build_session`` spawns the rank processes behind the usual Session
surface: each rank owns a full single-worker stack (arena, engine,
adaptive controller) and ships its bounded-lossy-compressed gradients
to the coordinator every step; every rank applies the same bit-exact
reduced broadcast, so rank weights stay bit-identical — which this
script verifies, along with the exchange's compression ledger and the
error-feedback residual trajectory.

    python examples/ddp_training.py

Environment: ``REPRO_EXAMPLE_ITERS`` overrides the iteration count
(CI smoke runs use 2).
"""

import os

import numpy as np

from repro.api import Session
from repro.models import build_scaled_model
from repro.nn import SyntheticImageDataset, batches

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "20"))
BATCH = 16
CONFIG = os.path.join(os.path.dirname(__file__), "configs", "ddp_vgg.json")


def main():
    dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.5, seed=7)
    eval_x, eval_y = dataset.fixed_eval_set(128)

    net = build_scaled_model("vgg16", num_classes=8, image_size=16, rng=42)
    print(f"2-rank data-parallel training from {os.path.basename(CONFIG)} "
          f"({ITERATIONS} iterations, global batch {BATCH})...")
    with Session.from_json(CONFIG, net) as session:
        session.train(batches(dataset, BATCH, ITERATIONS, seed=1))
        acc = session.evaluate(eval_x, eval_y)

        # every rank applied the same broadcast bytes every step
        w0, w1 = session.rank_weights(0), session.rank_weights(1)
        identical = all(np.array_equal(a, b) for a, b in zip(w0, w1))

        stats = session.grad_exchange_stats
        print(f"\nfinal loss: {session.history.losses[-1]:.3f}  "
              f"eval accuracy: {acc:.3f}")
        print(f"rank weights bit-identical: {identical}")
        for rank, rec in enumerate(stats["per_rank"]):
            norms = rec["residual_norms"]
            print(f"rank {rank}: uplink compression {rec['ratio']:.2f}x, "
                  f"EF residual RMS {norms[0]:.2e} -> {norms[-1]:.2e}")
        print(f"broadcast (lossless) compression: "
              f"{stats['downlink']['ratio']:.2f}x")

    # the trained weights live in the coordinator's network after close
    print(f"captured config reproduces the run: "
          f"{session.capture().to_dict() == session.config.to_dict()}")


if __name__ == "__main__":
    main()
