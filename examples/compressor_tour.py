"""Tour of the compression landscape on a realistic activation tensor.

Reproduces the Section 2 argument in one script: lossless compression
caps near 2x, the JPEG-class baseline reaches ~7x but with uncontrolled
error and smeared zeros, while the SZ-style error-bounded compressor
reaches ~10x with a hard per-element bound and exact zero preservation.

    python examples/compressor_tour.py
"""

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.compression import SZCompressor, get_codec, max_abs_error, psnr


def make_activation(seed=0, shape=(8, 64, 28, 28)):
    """Band-limited post-ReLU feature maps (what conv layers produce)."""
    rng = np.random.default_rng(seed)
    x = gaussian_filter(rng.standard_normal(shape), sigma=(0, 0, 1.3, 1.3))
    x /= x.std()
    return np.maximum(x - 0.2, 0).astype(np.float32)


def main():
    x = make_activation()
    nz = np.count_nonzero(x) / x.size
    print(f"activation tensor {x.shape}, {x.nbytes / 1e6:.1f} MB, nonzero ratio {nz:.2f}\n")
    header = f"{'codec':26s} {'ratio':>7s} {'max err':>10s} {'psnr':>7s} {'zeros kept':>11s}"
    print(header)
    print("-" * len(header))

    def report(name, ratio, y):
        err = max_abs_error(x, y)
        kept = bool(np.all(y[x == 0] == 0))
        p = psnr(x, y)
        ps = f"{p:7.1f}" if np.isfinite(p) else "    inf"
        print(f"{name:26s} {ratio:>6.1f}x {err:>10.2e} {ps} {str(kept):>11s}")

    # every codec now comes from the unified registry
    for level_name, codec in (
        ("deflate (lossless)", get_codec("lossless")),
        ("sparse-lossless (CDMA)", get_codec("sparse-lossless")),
        ("jpeg-like q50 (JPEG-ACT)", get_codec("jpeg", quality=50)),
    ):
        ct = codec.compress(x)
        report(level_name, ct.compression_ratio, codec.decompress(ct))

    for eb in (1e-4, 1e-3, 1e-2):
        sz = get_codec("szlike", error_bound=eb, entropy="huffman", zero_filter=True)
        ct = sz.compress(x)
        report(f"sz  eb={eb:g}", ct.compression_ratio, sz.decompress(ct))

    # min_chunk_nbytes lowered so the 1.6 MB demo tensor actually splits
    ck = get_codec("chunked", inner="szlike", workers=4, min_chunk_nbytes=1 << 18,
                   error_bound=1e-3, entropy="huffman", zero_filter=True)
    ct = ck.compress(x)
    report(f"sz  eb=0.001 chunked x{len(ct.chunks)}", ct.compression_ratio,
           ck.decompress(ct))

    print("\nSZ reconstruction error is uniform (Figure 3):")
    sz = SZCompressor(1e-3, entropy="zlib", zero_filter=False)
    y = sz.roundtrip(x)
    err = (x.astype(np.float64) - y)[x != 0]
    print(f"  mean {err.mean():+.2e}   std {err.std():.2e} "
          f"(uniform expectation {1e-3 / np.sqrt(3):.2e})")
    hist, _ = np.histogram(err, bins=9, range=(-1e-3, 1e-3))
    print("  histogram:", " ".join(f"{h / hist.sum():.3f}" for h in hist))


if __name__ == "__main__":
    main()
