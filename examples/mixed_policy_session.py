"""Mixed per-layer compression policies from one committed JSON config.

The front door in action: ``configs/mixed_policy_vgg.json`` declares a
session where different VGG-16 layer groups get different treatment —

* ``l0``/``l2`` (early convs): a *fixed* tight error bound (5e-4) with
  a codebook-caching SZ codec,
* ``l5``/``l7`` (middle convs): sparsity-aware lossless compression,
* ``l10``/``l12`` (late convs): batch-chunked parallel SZ with a
  loosened adaptive clamp (eb_max=0.05),
* everything else: the session default (adaptive SZ + Huffman),

all packed into a byte arena under an 8 MB budget with the async
engine.  The same dict also round-trips through
``SessionConfig.to_json``/``from_json`` unchanged, so committing the
file pins the run.

    python examples/mixed_policy_session.py

Environment: ``REPRO_EXAMPLE_ITERS`` overrides the iteration count
(CI smoke runs use 2).
"""

import os

from repro.api import SessionConfig, build_session
from repro.models import build_scaled_model
from repro.nn import SyntheticImageDataset, batches

CONFIG = os.path.join(os.path.dirname(__file__), "configs", "mixed_policy_vgg.json")
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "30"))
BATCH = 8


def main():
    cfg = SessionConfig.from_json(CONFIG)
    print(f"loaded {os.path.basename(CONFIG)}: "
          f"{len(cfg.rules)} policy rules, engine={cfg.engine.kind}, "
          f"arena budget {cfg.storage.budget_bytes >> 20} MB")

    net = build_scaled_model("vgg16", num_classes=8, image_size=16, rng=42)
    dataset = SyntheticImageDataset(num_classes=8, image_size=16, signal=0.4, seed=7)

    with build_session(net, cfg) as session:
        print(f"training VGG-16 (scaled) for {ITERATIONS} iterations (batch {BATCH})...")
        session.train(batches(dataset, BATCH, ITERATIONS, seed=1))

        print(f"\noverall activation compression: {session.tracker.overall_ratio:.1f}x")
        print("\nper-rule accounting (MemoryTracker.group_summary):")
        for rec in session.tracker.group_summary():
            print(f"  {rec.layer_name:14s} {rec.packs:4d} packs   "
                  f"{rec.raw_bytes / 1e6:7.1f} MB raw -> "
                  f"{rec.stored_bytes / 1e6:7.1f} MB stored   ({rec.ratio:4.1f}x)")

        print("\nper-layer error bounds (rule-pinned layers stay fixed):")
        table = session.policy_table
        for name, eb in sorted(session.error_bounds.items()):
            print(f"  {name:6s} [{table.group_of(name):14s}] eb = {eb:9.3e}")


if __name__ == "__main__":
    main()
