"""Reproduce the paper's Section 3 analysis end to end.

1. Inject uniform error into a conv layer's activations and show the
   gradient error comes out *normal* (Figure 6a).
2. Preserve zeros and show sigma shrinks by sqrt(R) (Figure 6b / Eq. 7).
3. Verify the sigma prediction (Eq. 6) across several layer geometries
   and fit the coefficient (Figure 8; exactly 1/sqrt(3) in the rms
   convention).
4. Invert the model (Eq. 9) and confirm a requested sigma is achieved.

    python examples/error_propagation_study.py
"""

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.analysis import conv_gradient_error_sample, describe_sample
from repro.core import (
    THEORY_COEFFICIENT_A,
    error_bound_for_sigma,
    fit_coefficient,
    predict_sigma,
)
from repro.nn import Conv2D

EB = 1e-3


def make_layer(rng, n=12, cin=12, cout=16, hw=18):
    x = gaussian_filter(rng.standard_normal((n, cin, hw, hw)), (0, 0, 1.2, 1.2))
    x = np.maximum(x / x.std(), 0).astype(np.float32)
    conv = Conv2D(cin, cout, 3, padding=1, rng=2)
    dout = (rng.standard_normal((n, cout, hw, hw)) / n).astype(np.float32)
    return x, conv, dout


def main():
    rng = np.random.default_rng(1)
    x, conv, dout = make_layer(rng)
    r = np.count_nonzero(x) / x.size

    print("1) gradient error under uniform activation error (Figure 6a)")
    errs = conv_gradient_error_sample(conv, x, dout, EB, trials=4, rng=3)
    rep = describe_sample(errs)
    print(f"   sigma = {rep.std:.3e}, within +-sigma = {rep.within_one_sigma:.3f} "
          f"(normal: 0.682), KS-normal p = {rep.normal_ks_pvalue:.3f}\n")

    print("2) zeros preserved (Figure 6b)")
    errs_z = conv_gradient_error_sample(conv, x, dout, EB, trials=4,
                                        preserve_zeros=True, rng=3)
    rep_z = describe_sample(errs_z)
    print(f"   sigma = {rep_z.std:.3e}; ratio to (1) = {rep_z.std / rep.std:.3f}, "
          f"sqrt(R) = {np.sqrt(r):.3f}\n")

    print("3) sigma prediction across layer geometries (Figure 8)")
    meas, ls, ms, rs = [], [], [], []
    for n, cin, cout, hw in [(8, 8, 12, 14), (16, 16, 8, 10), (4, 24, 24, 22)]:
        x2, conv2, dout2 = make_layer(rng, n, cin, cout, hw)
        r2 = np.count_nonzero(x2) / x2.size
        e = conv_gradient_error_sample(conv2, x2, dout2, EB, trials=3,
                                       preserve_zeros=True, rng=5)
        lrms = float(np.sqrt((dout2.astype(np.float64) ** 2).mean()))
        m = n * hw * hw
        pred = predict_sigma(EB, lrms, m, nonzero_ratio=r2)
        print(f"   layer N={n:2d} {cin:2d}->{cout:2d} {hw}x{hw}: "
              f"measured {e.std():.3e} vs predicted {pred:.3e}")
        meas.append(e.std()); ls.append(lrms); ms.append(m); rs.append(r2)
    a = fit_coefficient(meas, [EB] * 3, ls, ms, rs)
    print(f"   fitted coefficient a = {a:.3f} (theory 1/sqrt(3) = "
          f"{THEORY_COEFFICIENT_A:.3f})\n")

    print("4) inverting the model (Eq. 9): request sigma, get sigma")
    lrms = float(np.sqrt((dout.astype(np.float64) ** 2).mean()))
    m = dout.shape[0] * dout.shape[2] * dout.shape[3]
    target = 0.5 * rep_z.std
    eb = error_bound_for_sigma(target, lrms, m, nonzero_ratio=r)
    achieved = conv_gradient_error_sample(conv, x, dout, eb, trials=4,
                                          preserve_zeros=True, rng=7).std()
    print(f"   requested sigma {target:.3e} -> chose eb {eb:.3e} -> "
          f"achieved {achieved:.3e} ({achieved / target:.2f}x of target)")


if __name__ == "__main__":
    main()
