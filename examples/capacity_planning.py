"""Capacity planning with the performance simulator (Figure 11's tool).

For each model and device, report the largest batch that fits and the
resulting throughput, with and without the compression framework — the
decision a practitioner makes when a model doesn't fit their GPU.

    python examples/capacity_planning.py
"""

from repro.simulator import (
    BASELINE,
    TrainingSimulator,
    V100,
    V100_32GB,
    layrub_like,
    our_policy,
)

MODELS = ["alexnet", "vgg16", "resnet18", "resnet50"]
POLICIES = [("baseline", BASELINE), ("ours 11x", our_policy(11.0)), ("layrub", layrub_like())]


def main():
    for device in (V100, V100_32GB):
        print(f"\n=== {device.name} ({device.mem_capacity / 1024**3:.0f} GB) ===")
        header = f"{'model':10s} " + " ".join(f"{name:>22s}" for name, _ in POLICIES)
        print(header)
        print(" " * 11 + " ".join(f"{'maxN / img/s':>22s}" for _ in POLICIES))
        for model in MODELS:
            cells = []
            for _, policy in POLICIES:
                sim = TrainingSimulator(model, device, policy=policy)
                mb = sim.max_batch()
                thr = sim.simulate(mb).images_per_s if mb else 0.0
                cells.append(f"{mb:>9d} / {thr:>8.0f}")
            print(f"{model:10s} " + " ".join(f"{c:>22s}" for c in cells))

        print("\nthroughput vs batch (resnet50, ours, 4 nodes x 4 GPUs):")
        sim = TrainingSimulator("resnet50", device, policy=our_policy(11.0))
        for b in (8, 32, 128, 256):
            res = sim.simulate(b, workers=16)
            tag = "" if res.fits else "  (does not fit)"
            print(f"  N={b:<4d} {res.images_per_s:>8.0f} img/s{tag}")


if __name__ == "__main__":
    main()
