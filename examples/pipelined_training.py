"""Pipelined training: overlap compression with compute, for real.

The paper's performance claim is that activation compression costs
almost no wall-clock time because it is *overlapped* with training.
This example runs the same compressed training twice — once with the
synchronous engine (compress inline with every pack/unpack) and once
with ``engine="async"`` (pack jobs run on a worker pool while the next
layer's forward computes; outstanding handles are prefetched in reverse
order ahead of backward) — and shows that the async run produces the
*bit-identical* losses and tracker numbers, only faster on multi-core
hosts.

    python examples/pipelined_training.py
"""

import os
import time

import numpy as np

from repro.compression import get_codec
from repro.core import AdaptiveConfig, AsyncEngine, CompressedTraining
from repro.models import build_scaled_model
from repro.nn import SGD, SyntheticImageDataset, Trainer, batches

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERS", "20"))
BATCH = 16


def run(engine):
    dataset = SyntheticImageDataset(num_classes=8, image_size=32, signal=0.4, seed=7)
    net = build_scaled_model("vgg16", num_classes=8, image_size=32, rng=42)
    opt = SGD(net.parameters(), lr=0.01, momentum=0.9, weight_decay=5e-4)
    with Trainer(net, opt) as trainer:
        session = CompressedTraining(
            net, opt,
            compressor=get_codec("szlike", entropy="zlib", zero_filter=True),
            config=AdaptiveConfig(W=10, warmup_iterations=3),
            engine=engine,
        ).attach(trainer)
        t0 = time.perf_counter()
        trainer.train(batches(dataset, BATCH, ITERATIONS, seed=1))
        elapsed = time.perf_counter() - t0
    return elapsed, trainer.history.losses, session


def main():
    print(f"training vgg16 (scaled) for {ITERATIONS} iterations (batch {BATCH})...\n")
    t_sync, losses_sync, sess_sync = run("sync")
    print(f"sync engine : {t_sync:.2f}s "
          f"({sess_sync.tracker.overall_ratio:.1f}x activation reduction)")

    engine = AsyncEngine(workers=2, prefetch_depth=2)
    t_async, losses_async, sess_async = run(engine)
    print(f"async engine: {t_async:.2f}s "
          f"({sess_async.tracker.overall_ratio:.1f}x activation reduction)")

    assert np.array_equal(losses_sync, losses_async), "engines must match bit-for-bit"
    assert sess_sync.tracker.iteration_ratios == sess_async.tracker.iteration_ratios
    print("\nlosses and tracker numbers are bit-identical across engines")
    print(f"overlap speedup: {t_sync / t_async:.2f}x "
          f"(single-core hosts will show ~1.0x)")
    print(f"engine stats: {engine.packs_overlapped}/{engine.packs_submitted} packs "
          f"overlapped forward compute, "
          f"{engine.prefetch_hits}/{engine.prefetches_scheduled} unpacks served "
          "by reverse-order prefetch")


if __name__ == "__main__":
    main()
